// Package vstore is the sharded, group-committed storage engine that
// scales the change-centric repository of package store to millions of
// documents. It keeps the same contract — each document is its chain of
// completed deltas, every acknowledged version survives a crash, any
// past version reconstructs byte-identically — but changes the shape of
// the durability layer:
//
//   - Documents are hashed across N shards. Each shard owns ONE
//     append-only segment journal shared by every document in the
//     shard, instead of one journal file per document. At crawl scale
//     this turns millions of tiny files into a few dozen.
//   - Each shard runs a group-commit writer: concurrent Puts are
//     batched into a single write + fsync, and every Put in the batch
//     is acknowledged when the batch is durable. Under store.SyncAlways
//     the durability guarantee is unchanged — no Put is acknowledged
//     before its record is on stable storage — but the fsync cost is
//     amortized over the whole batch.
//   - Background compaction folds sealed segments into per-document
//     snapshots and retires them, in strict write → fsync → rename →
//     retire order (the xyvet segorder analyzer enforces the ordering
//     in this package's source).
//   - Materialized current versions live in a bounded LRU; documents
//     outside it keep only their serialized base + delta chain in
//     memory and are re-materialized on demand, so reconstruction cost
//     is paid once per cache residency, not once per read.
//
// The on-disk layout under dir/:
//
//	MANIFEST.json                    engine marker: format + shard count
//	shard-000/seg-00000001.log       segment journal (many documents)
//	shard-000/docs/<escaped id>/     per-document snapshot
//	    v1.xml delta-0001.xml ... versions
//
// A directory in the old per-document layout (package store) is
// refused with ErrNeedsMigration; `xystore migrate` converts it in
// place with a backup.
package vstore

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
	"xydiff/internal/store"
	"xydiff/internal/xid"
)

// Config tunes the engine. The zero value picks production defaults
// (16 shards, SyncAlways, batches of up to 128 records gathered for at
// most 2ms, a 4096-document version cache, 64 MiB segments).
type Config struct {
	// Shards is the number of hash-of-id shards. The value is fixed at
	// directory creation and recorded in the manifest; reopening uses
	// the recorded count regardless of this field (default 16).
	Shards int
	// Sync is the segment fsync policy, with exactly the semantics of
	// the per-document journal: SyncAlways means no Put is acknowledged
	// before its batch is durable.
	Sync store.SyncPolicy
	// SyncInterval is the flush period under store.SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// MaxBatch caps how many records one fsync may acknowledge
	// (default 128).
	MaxBatch int
	// MaxDelay bounds how long the group-commit writer waits to fill a
	// batch once at least one record is pending and more writers are in
	// flight (default 2ms). A lone writer is never delayed.
	MaxDelay time.Duration
	// QueueDepth bounds records waiting for the group-commit writer,
	// per shard; submissions beyond it fail fast with ErrBusy so the
	// caller can shed load instead of blocking (default 1024).
	QueueDepth int
	// CacheSize bounds the LRU of materialized current versions
	// (default 4096 documents).
	CacheSize int
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 64 MiB).
	SegmentBytes int64
	// CompactSegments triggers background compaction of a shard once it
	// has this many sealed segments; 0 picks the default 8, negative
	// disables background compaction (Checkpoint still works).
	CompactSegments int
	// Scrub configures the background integrity scrubber; the zero
	// value disables the timer (ScrubPass still runs on demand).
	Scrub ScrubConfig
	// OpenDegraded tolerates corrupt files at open instead of refusing:
	// damage is quarantined (renamed aside, never deleted) and the
	// affected documents serve their latest intact version flagged with
	// ErrDegraded. The default false keeps the strict contract — a
	// library caller must opt in to partial data.
	OpenDegraded bool
	// FS overrides the filesystem (fault-injection tests); nil means
	// the real one.
	FS faultfs.FS
}

// ScrubConfig tunes the background scrubber (see internal/scrub).
type ScrubConfig struct {
	// Interval is the pause between integrity cycles; 0 or negative
	// disables the background timer.
	Interval time.Duration
	// Throttle caps scrub reads in bytes per second; 0 picks
	// scrub.DefaultThrottle (8 MiB/s), negative disables pacing.
	Throttle int64
	// NoRepair stops the scrubber from rewriting damage it could cover
	// from resident data: every finding is quarantined instead. The
	// zero value (repair on) is the production default.
	NoRepair bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.CompactSegments == 0 {
		c.CompactSegments = 8
	}
	if c.FS == nil {
		c.FS = faultfs.OS{}
	}
	return c
}

// Store is the sharded engine. All methods are safe for concurrent
// use; writes to different documents group-commit together, writes to
// the same document serialize on its state lock.
type Store struct {
	opts diff.Options
	cfg  Config
	obs  store.Observer
	dir  string
	fs   faultfs.FS

	shards []*shard
	cache  *versionCache

	mu     sync.Mutex // guards closed and the lifecycle channels
	closed bool

	stopSync chan struct{}
	syncDone chan struct{}

	compactCh   chan struct{}
	compactDone chan struct{}

	scrubber *scrub.Runner

	stats    engineCounters
	recovery store.RecoveryStats
}

// docState is one document's resident state: the version count plus
// the serialized base version and delta chain. Trees are NOT held
// here — the materialized latest lives in the store's LRU and is
// rebuilt from these bytes on a miss.
type docState struct {
	mu       sync.RWMutex
	versions int
	base     []byte   // serialized version 1
	deltas   [][]byte // deltas[i] transforms version i+1 into i+2
	// snapVersions is how many versions the on-disk snapshot covers
	// (0 when the document has never been compacted).
	snapVersions int
	// degraded marks a document with a quarantined slice of history:
	// versions 1..versions are intact and keep serving, anything beyond
	// answers with ErrDegraded instead of a 404 or a 500. Puts keep
	// working, extending the intact chain.
	degraded       bool
	degradedReason string
}

// shard owns one slice of the document space: its documents, its
// segment journal and its group-commit writer.
type shard struct {
	idx int
	dir string

	mu   sync.RWMutex // guards docs map only, never document contents
	docs map[string]*docState

	seg *segmentWriter

	sendMu     sync.RWMutex // guards sendClosed vs concurrent submits
	sendClosed bool
	commitCh   chan *commitReq
	writerDone chan struct{}

	compactMu sync.Mutex // serializes Checkpoint, background compaction and scrub repair

	// lastCompact is when the shard last completed a compaction pass
	// (unix seconds; 0 = not yet this run). Surfaced in /healthz so a
	// stuck compactLoop is visible.
	lastCompact atomic.Int64

	stats shardCounters
	// inflight counts Puts between submission intent and
	// acknowledgement; the group-commit writer lingers for a batch only
	// while more are in flight than it has gathered.
	inflight atomic.Int64
}

// shardFor hashes a document id onto its shard.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id)) // fnv's Write cannot fail
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// SetObserver installs the hook called after every versioning diff. It
// must be set before the store starts serving concurrent Puts.
func (s *Store) SetObserver(obs store.Observer) { s.obs = obs }

// state returns (creating if needed) the document's state.
func (sh *shard) state(id string) *docState {
	sh.mu.RLock()
	st := sh.docs[id]
	sh.mu.RUnlock()
	if st != nil {
		return st
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st = sh.docs[id]; st == nil {
		st = &docState{}
		sh.docs[id] = st
	}
	return st
}

// lookup returns the document's state, or nil when unknown.
func (sh *shard) lookup(id string) *docState {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.docs[id]
}

// Put installs a new version of the document identified by id and
// returns its version number (1-based) and the delta from the previous
// version (nil for the first). The store keeps its own copy of doc.
func (s *Store) Put(id string, doc *dom.Node) (int, *delta.Delta, error) {
	return s.PutContext(context.Background(), id, doc)
}

// PutContext is Put honouring context cancellation: the diff against
// the previous version aborts with ctx.Err() once ctx is done, leaving
// the stored history untouched.
//
// The version's record reaches the shard's segment journal — and,
// under SyncAlways, stable storage — before PutContext returns: a nil
// error means the version survives a crash. When the shard's
// group-commit queue is saturated the Put fails fast with ErrBusy
// instead of blocking, so callers can shed load.
func (s *Store) PutContext(ctx context.Context, id string, doc *dom.Node) (int, *delta.Delta, error) {
	return s.putContext(ctx, id, doc, "")
}

// PutMatcherContext is PutContext with a per-call matcher override: a
// non-empty matcher replaces the store's configured Options.Matcher
// for this version's diff only. The stored delta format is identical
// for every matcher, so histories may freely mix them.
func (s *Store) PutMatcherContext(ctx context.Context, id string, doc *dom.Node, matcher diff.Matcher) (int, *delta.Delta, error) {
	return s.putContext(ctx, id, doc, matcher)
}

func (s *Store) putContext(ctx context.Context, id string, doc *dom.Node, matcher diff.Matcher) (int, *delta.Delta, error) {
	if doc == nil || doc.Type != dom.Document {
		return 0, nil, fmt.Errorf("vstore: need a Document node")
	}
	opts := s.opts
	if matcher != "" {
		opts.Matcher = matcher
	}
	sh := s.shardFor(id)
	st := sh.state(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.versions == 0 {
		first := doc.Clone()
		xid.Assign(first)
		body, err := serializeTree(first)
		if err != nil {
			return 0, nil, fmt.Errorf("vstore: serialize %s version 1: %w", id, err)
		}
		if err := s.appendDurable(sh, encodeRecord(recordBase, id, 1, body)); err != nil {
			return 0, nil, err
		}
		st.base = body
		st.versions = 1
		s.cache.put(id, first, 1)
		return 1, nil, nil
	}
	old, err := s.materializeLocked(id, st)
	if err != nil {
		return 0, nil, err
	}
	next := doc.Clone()
	r, err := diff.DiffDetailedContext(ctx, old, next, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("vstore: diff %s: %w", id, err)
	}
	body, err := serializeDelta(r.Delta)
	if err != nil {
		return 0, nil, fmt.Errorf("vstore: serialize %s delta %d: %w", id, st.versions, err)
	}
	if err := s.appendDurable(sh, encodeRecord(recordDelta, id, st.versions+1, body)); err != nil {
		return 0, nil, err
	}
	st.deltas = append(st.deltas, body)
	st.versions++
	s.cache.put(id, next, st.versions)
	if s.obs != nil {
		s.obs(id, st.versions, old, next, r)
	}
	return st.versions, r.Delta, nil
}

// materializeLocked returns the document's latest version as a tree
// with replay-canonical XIDs, from the LRU when resident and by
// replaying base + deltas otherwise. The caller holds st.mu (read or
// write); the returned tree is the cache's copy — callers that hand it
// out must Clone.
func (s *Store) materializeLocked(id string, st *docState) (*dom.Node, error) {
	if doc := s.cache.get(id, st.versions); doc != nil {
		s.stats.cacheHits.Add(1)
		return doc, nil
	}
	s.stats.cacheMisses.Add(1)
	doc, err := dom.ParseWithOptions(bytes.NewReader(st.base), snapshotLoadOptions())
	if err != nil {
		return nil, fmt.Errorf("vstore: materialize %s base: %w", id, err)
	}
	xid.Assign(doc)
	for i, raw := range st.deltas {
		d, err := delta.Parse(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("vstore: materialize %s delta %d: %w", id, i+1, err)
		}
		if err := delta.Apply(doc, d); err != nil {
			return nil, fmt.Errorf("vstore: materialize %s: delta %d does not apply: %w", id, i+1, err)
		}
	}
	s.cache.put(id, doc, st.versions)
	return doc, nil
}

// reading returns id's state read-locked, or an error when the
// document is unknown (a state published by a first Put still in
// flight counts as unknown). The caller must RUnlock it.
func (s *Store) reading(id string) (*docState, error) {
	st := s.shardFor(id).lookup(id)
	if st == nil {
		return nil, fmt.Errorf("vstore: %w %q", store.ErrUnknownDocument, id)
	}
	st.mu.RLock()
	if st.versions == 0 {
		if st.degraded {
			err := &DegradedError{ID: id, Reason: st.degradedReason}
			st.mu.RUnlock()
			return nil, err
		}
		st.mu.RUnlock()
		return nil, fmt.Errorf("vstore: %w %q", store.ErrUnknownDocument, id)
	}
	//xyvet:allow lockbalance -- deliberate handoff: the caller receives st read-locked and must RUnlock it
	return st, nil
}

// Latest returns a copy of the current version and its version number.
func (s *Store) Latest(id string) (*dom.Node, int, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, 0, err
	}
	defer st.mu.RUnlock()
	doc, err := s.materializeLocked(id, st)
	if err != nil {
		return nil, 0, err
	}
	return doc.Clone(), st.versions, nil
}

// Versions returns how many versions of id are recorded (0 if none).
func (s *Store) Versions(id string) int {
	st := s.shardFor(id).lookup(id)
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.versions
}

// IDs lists the stored document identifiers, sorted. Documents whose
// first Put is still in flight are omitted.
func (s *Store) IDs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		states := make(map[string]*docState, len(sh.docs))
		for id, st := range sh.docs {
			states[id] = st
		}
		sh.mu.RUnlock()
		for id, st := range states {
			st.mu.RLock()
			ok := st.versions > 0
			st.mu.RUnlock()
			if ok {
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Version reconstructs version n (1-based) of the document by applying
// inverted deltas backward from the materialized latest version.
func (s *Store) Version(id string, n int) (*dom.Node, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	if n > st.versions && st.degraded {
		return nil, &DegradedError{ID: id, Reason: st.degradedReason, Intact: st.versions}
	}
	if n < 1 || n > st.versions {
		return nil, fmt.Errorf("vstore: %s has versions 1..%d, not %d: %w", id, st.versions, n, store.ErrNoSuchVersion)
	}
	latest, err := s.materializeLocked(id, st)
	if err != nil {
		return nil, err
	}
	doc := latest.Clone()
	for v := st.versions; v > n; v-- {
		d, err := st.parseDelta(v - 2)
		if err != nil {
			return nil, fmt.Errorf("vstore: reconstruct %s version %d: %w", id, n, err)
		}
		if err := applyInverse(doc, d); err != nil {
			return nil, fmt.Errorf("vstore: reconstruct %s version %d: %w", id, n, err)
		}
	}
	return doc, nil
}

// Delta returns the stored delta that transforms version n into n+1.
func (s *Store) Delta(id string, n int) (*delta.Delta, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	if n >= st.versions && st.degraded {
		return nil, &DegradedError{ID: id, Reason: st.degradedReason, Intact: st.versions}
	}
	if n < 1 || n >= st.versions {
		return nil, fmt.Errorf("vstore: %s has deltas 1..%d, not %d: %w", id, st.versions-1, n, store.ErrNoSuchVersion)
	}
	return st.parseDelta(n - 1)
}

// DeltasBetween returns the delta sequence transforming version from
// into version to. When from > to, the deltas are inverted and
// returned in reverse order, so applying them in order still works.
func (s *Store) DeltasBetween(id string, from, to int) ([]*delta.Delta, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	if (from > st.versions || to > st.versions) && st.degraded {
		return nil, &DegradedError{ID: id, Reason: st.degradedReason, Intact: st.versions}
	}
	if from < 1 || from > st.versions || to < 1 || to > st.versions {
		return nil, fmt.Errorf("vstore: version range %d..%d outside 1..%d: %w", from, to, st.versions, store.ErrNoSuchVersion)
	}
	var out []*delta.Delta
	switch {
	case from < to:
		for v := from; v < to; v++ {
			d, err := st.parseDelta(v - 1)
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
	case from > to:
		for v := from; v > to; v-- {
			d, err := st.parseDelta(v - 2)
			if err != nil {
				return nil, err
			}
			inv, err := d.Invert()
			if err != nil {
				return nil, fmt.Errorf("vstore: invert %s delta %d: %w", id, v-1, err)
			}
			out = append(out, inv)
		}
	}
	return out, nil
}

// parseDelta decodes the i-th stored delta (0-based); the caller holds
// the state lock.
func (st *docState) parseDelta(i int) (*delta.Delta, error) {
	d, err := delta.Parse(bytes.NewReader(st.deltas[i]))
	if err != nil {
		return nil, fmt.Errorf("vstore: parse stored delta %d: %w", i+1, err)
	}
	return d, nil
}

// applyInverse applies the inverse of d to doc.
func applyInverse(doc *dom.Node, d *delta.Delta) error {
	inv, err := d.Invert()
	if err != nil {
		return err
	}
	return delta.Apply(doc, inv)
}

// Close stops the background loops and the per-shard group-commit
// writers: queued records are flushed and fsynced, segment files
// closed. The store stays readable; writes after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.scrubber != nil {
		s.scrubber.Stop()
	}
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	if s.compactCh != nil {
		close(s.compactCh)
		<-s.compactDone
	}
	var firstErr error
	for _, sh := range s.shards {
		sh.sendMu.Lock()
		if !sh.sendClosed {
			sh.sendClosed = true
			close(sh.commitCh)
		}
		sh.sendMu.Unlock()
	}
	for _, sh := range s.shards {
		<-sh.writerDone
		if err := sh.seg.close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vstore: close shard %d segment: %w", sh.idx, err)
		}
	}
	return firstErr
}

// SyncPolicy returns the segment fsync policy.
func (s *Store) SyncPolicy() store.SyncPolicy { return s.cfg.Sync }

// serializeTree renders a document for a record body or snapshot file.
func serializeTree(doc *dom.Node) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := doc.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serializeDelta renders a delta for a record body or snapshot file.
func serializeDelta(d *delta.Delta) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// snapshotLoadOptions parse persisted XML with full fidelity, exactly
// as the per-document engine does: whitespace-only text in a record is
// genuine content and must survive the round-trip for XIDs to line up.
func snapshotLoadOptions() dom.ParseOptions {
	return dom.ParseOptions{KeepWhitespace: true, KeepComments: true, KeepProcInsts: true}
}
