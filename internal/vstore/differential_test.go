package vstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
)

// The sharded engine must be observationally identical to the
// per-document engine: same deltas, same reconstructions, byte for
// byte, over a changesim-driven golden corpus — including after a
// checkpoint and a reopen, where vstore's lazily-materialized trees
// come from replay instead of from the diff that created them.

func renderDelta(t *testing.T, d *delta.Delta) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDifferentialAgainstPerDocumentStore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	oldEngine := store.New(diff.Options{})
	dir := t.TempDir()
	newEngine, err := Open(dir, diff.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer newEngine.Close()

	type docRun struct {
		id       string
		versions int
	}
	var runs []docRun
	for d := 0; d < 4; d++ {
		id := fmt.Sprintf("doc-%d", d)
		doc := changesim.Catalog(rng, 3, 4)
		cur := doc
		const versions = 5
		for v := 0; v < versions; v++ {
			vOld, dOld, errOld := oldEngine.Put(id, cur)
			vNew, dNew, errNew := newEngine.Put(id, cur)
			if (errOld == nil) != (errNew == nil) {
				t.Fatalf("%s v%d: old err=%v new err=%v", id, v+1, errOld, errNew)
			}
			if vOld != vNew {
				t.Fatalf("%s: version numbers diverge (%d vs %d)", id, vOld, vNew)
			}
			if (dOld == nil) != (dNew == nil) {
				t.Fatalf("%s v%d: delta nilness diverges", id, v+1)
			}
			if dOld != nil && renderDelta(t, dOld) != renderDelta(t, dNew) {
				t.Fatalf("%s v%d: deltas differ:\nold %s\nnew %s",
					id, v+1, renderDelta(t, dOld), renderDelta(t, dNew))
			}
			res, err := changesim.Simulate(cur, changesim.Uniform(0.12, rng.Int63()))
			if err != nil {
				t.Fatal(err)
			}
			cur = res.New
		}
		runs = append(runs, docRun{id: id, versions: versions})
	}

	compare := func(eng *Store, label string) {
		t.Helper()
		for _, run := range runs {
			for v := 1; v <= run.versions; v++ {
				wantDoc, err := oldEngine.Version(run.id, v)
				if err != nil {
					t.Fatal(err)
				}
				gotDoc, err := eng.Version(run.id, v)
				if err != nil {
					t.Fatalf("%s: %s v%d: %v", label, run.id, v, err)
				}
				if gotDoc.String() != wantDoc.String() {
					t.Fatalf("%s: %s v%d reconstruction differs", label, run.id, v)
				}
				if v < run.versions {
					wantD, err := oldEngine.Delta(run.id, v)
					if err != nil {
						t.Fatal(err)
					}
					gotD, err := eng.Delta(run.id, v)
					if err != nil {
						t.Fatalf("%s: %s delta %d: %v", label, run.id, v, err)
					}
					if renderDelta(t, gotD) != renderDelta(t, wantD) {
						t.Fatalf("%s: %s delta %d differs", label, run.id, v)
					}
				}
			}
			wantAgg, err := oldEngine.Aggregate(run.id, 1, run.versions)
			if err != nil {
				t.Fatal(err)
			}
			gotAgg, err := eng.Aggregate(run.id, 1, run.versions)
			if err != nil {
				t.Fatalf("%s: aggregate %s: %v", label, run.id, err)
			}
			if renderDelta(t, gotAgg) != renderDelta(t, wantAgg) {
				t.Fatalf("%s: %s aggregate differs", label, run.id)
			}
		}
	}
	compare(newEngine, "live")

	// A checkpoint folds everything into snapshots; correctness must
	// not depend on where the bytes live.
	if err := newEngine.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	compare(newEngine, "after checkpoint")

	// Reopen: trees now come from replaying persisted bytes, and the
	// version chains must still match the old engine exactly.
	if err := newEngine.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, diff.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compare(reopened, "reopened")

	// And diffs taken AFTER a reopen must still match: the replayed
	// latest tree carries the same XIDs the diff-produced tree had.
	for _, run := range runs {
		nextOld, err := oldEngine.Version(run.id, run.versions)
		if err != nil {
			t.Fatal(err)
		}
		mut, err := changesim.Simulate(nextOld, changesim.Uniform(0.15, 7))
		if err != nil {
			t.Fatal(err)
		}
		_, dOld, errOld := oldEngine.Put(run.id, mut.New)
		_, dNew, errNew := reopened.Put(run.id, mut.New)
		if errOld != nil || errNew != nil {
			t.Fatalf("%s post-reopen put: old=%v new=%v", run.id, errOld, errNew)
		}
		if renderDelta(t, dOld) != renderDelta(t, dNew) {
			t.Fatalf("%s: post-reopen deltas differ:\nold %s\nnew %s",
				run.id, renderDelta(t, dOld), renderDelta(t, dNew))
		}
	}
}

// TestSerializationRoundTrip pins the property the byte-resident
// design leans on: parse(serialize(tree)) + xid.Assign reproduces a
// tree that serializes identically.
func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := changesim.Site(rng, 5)
	body, err := serializeTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dom.ParseWithOptions(bytes.NewReader(body), snapshotLoadOptions())
	if err != nil {
		t.Fatal(err)
	}
	body2, err := serializeTree(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("serialize→parse→serialize is not a fixed point")
	}
}
