package vstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/store"
)

// buildOldStore fabricates a PR-2-era per-document store directory:
// several documents, several versions, some checkpointed (snapshot
// dirs) and some only journaled — exactly the mixed state a live
// daemon's directory is in when an operator migrates it.
func buildOldStore(t *testing.T, dir string) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	old, err := store.Open(dir, diff.Options{}, store.Durability{Sync: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for d := 0; d < 3; d++ {
		id := fmt.Sprintf("doc %d", d) // space exercises id escaping
		ids = append(ids, id)
		cur := changesim.Catalog(rng, 2, 3)
		for v := 0; v < 4; v++ {
			if _, _, err := old.Put(id, cur); err != nil {
				t.Fatal(err)
			}
			res, err := changesim.Simulate(cur, changesim.Uniform(0.15, rng.Int63()))
			if err != nil {
				t.Fatal(err)
			}
			cur = res.New
		}
	}
	// Snapshot everything, then add journal-only tail versions so the
	// migration has to merge snapshot + journal state.
	if err := old.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:2] {
		latest, _, err := old.Latest(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := changesim.Simulate(latest, changesim.Uniform(0.2, 5))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := old.Put(id, res.New); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestMigrateRoundTrip(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "data")
	ids := buildOldStore(t, dir)

	// Reference view of the old store before migration touches it.
	ref, err := store.Load(dir, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}

	count, err := Migrate(dir, diff.Options{}, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(ids) {
		t.Fatalf("migrated %d documents, want %d", count, len(ids))
	}
	// The backup is the untouched original.
	backup := dir + ".pre-migrate"
	if _, err := os.Stat(backup); err != nil {
		t.Fatalf("backup missing: %v", err)
	}
	fromBackup, err := store.Load(backup, diff.Options{})
	if err != nil {
		t.Fatalf("backup unreadable as old store: %v", err)
	}
	if got, want := len(fromBackup.IDs()), len(ids); got != want {
		t.Fatalf("backup holds %d documents, want %d", got, want)
	}

	// The migrated directory opens as a sharded store and matches the
	// reference byte for byte, deltas included.
	s, err := Open(dir, diff.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.IDs(); len(got) != len(ids) {
		t.Fatalf("migrated IDs = %v", got)
	}
	for _, id := range ids {
		want := ref.Versions(id)
		if got := s.Versions(id); got != want {
			t.Fatalf("%s: %d versions after migration, want %d", id, got, want)
		}
		for v := 1; v <= want; v++ {
			refDoc, err := ref.Version(id, v)
			if err != nil {
				t.Fatal(err)
			}
			gotDoc, err := s.Version(id, v)
			if err != nil {
				t.Fatalf("%s v%d: %v", id, v, err)
			}
			if gotDoc.String() != refDoc.String() {
				t.Fatalf("%s v%d differs after migration", id, v)
			}
			if v < want {
				refD, err := ref.Delta(id, v)
				if err != nil {
					t.Fatal(err)
				}
				gotD, err := s.Delta(id, v)
				if err != nil {
					t.Fatal(err)
				}
				if renderDelta(t, gotD) != renderDelta(t, refD) {
					t.Fatalf("%s delta %d differs after migration", id, v)
				}
			}
		}
	}
	// The migrated store keeps working: new Puts, then reopen.
	latest, _, err := s.Latest(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := changesim.Simulate(latest, changesim.Uniform(0.2, 11))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Put(ids[0], res.New)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Versions(ids[0]) + 1; v != want {
		t.Fatalf("post-migration Put produced v%d, want %d", v, want)
	}
}

func TestMigrateRefusesWrongDirectories(t *testing.T) {
	// Already-sharded directory.
	dir := t.TempDir()
	s, err := Open(dir, diff.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("doc", parse(t, `<a/>`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Migrate(dir, diff.Options{}, Config{}); err == nil || !strings.Contains(err.Error(), "already in sharded layout") {
		t.Fatalf("Migrate(sharded dir) = %v, want 'already in sharded layout'", err)
	}
	// Leftover backup from a previous migration blocks a rerun.
	root := t.TempDir()
	oldDir := filepath.Join(root, "data")
	buildOldStore(t, oldDir)
	if _, err := Migrate(oldDir, diff.Options{}, Config{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	// dir is now sharded, backup exists; a rerun must refuse loudly.
	if _, err := Migrate(oldDir, diff.Options{}, Config{Shards: 2}); err == nil || !strings.Contains(err.Error(), "pre-migrate") {
		t.Fatalf("rerun after migration = %v, want backup complaint", err)
	}
}
