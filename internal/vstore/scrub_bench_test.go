package vstore

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// BenchmarkScrubPass measures unthrottled verification throughput over
// a mixed corpus (sealed segments + snapshots with checksum manifests):
// the MB/s ceiling an operator trades against foreground IO when
// picking Scrub.Throttle. EXPERIMENTS.md records the measured number.
func BenchmarkScrubPass(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, diff.Options{}, Config{
		Shards:          4,
		SegmentBytes:    32 << 10, // rotate often enough to leave sealed segments
		CompactSegments: -1,
		Scrub:           ScrubConfig{Throttle: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	filler := strings.Repeat("<i>scrub throughput corpus text</i>", 128)
	put := func(id string, v int) {
		doc, perr := dom.ParseString(fmt.Sprintf(`<r><v>%d</v>%s</r>`, v, filler))
		if perr != nil {
			b.Fatal(perr)
		}
		if _, _, perr := s.Put(id, doc); perr != nil {
			b.Fatal(perr)
		}
	}
	for d := 0; d < 32; d++ {
		for v := 1; v <= 4; v++ {
			put(fmt.Sprintf("snap-%02d", d), v)
		}
	}
	if err := s.Checkpoint(); err != nil { // folds the above into snapshots
		b.Fatal(err)
	}
	for d := 0; d < 32; d++ {
		for v := 1; v <= 4; v++ {
			put(fmt.Sprintf("seg-%02d", d), v)
		}
	}

	rep, err := s.ScrubPass(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if rep.Found != 0 || rep.BytesScanned == 0 {
		b.Fatalf("corpus not clean or empty: %+v", rep)
	}
	b.SetBytes(rep.BytesScanned)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScrubPass(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
