package vstore

import (
	"errors"
	"fmt"
)

// Degraded mode is the contract for documents with a quarantined slice
// of history: the store keeps serving every version it can still prove
// intact and answers for the rest with a typed error instead of a 404
// (the version did exist) or a 500 (nothing is broken in the request).
// The HTTP layer maps ErrDegraded to 410 Gone plus a Warning header,
// and flags successful reads of a degraded document with the same
// Warning so operators learn about the damage from normal traffic, not
// only from /healthz.

// ErrDegraded matches (errors.Is) every DegradedError.
var ErrDegraded = errors.New("vstore: document degraded")

// DegradedError reports a request that ran into a document's
// quarantined history.
type DegradedError struct {
	// ID is the degraded document.
	ID string
	// Reason says what was quarantined and why.
	Reason string
	// Intact is how many leading versions still serve (0 when the whole
	// document is gone).
	Intact int
}

func (e *DegradedError) Error() string {
	if e.Intact > 0 {
		return fmt.Sprintf("vstore: document %q degraded (versions 1..%d intact): %s", e.ID, e.Intact, e.Reason)
	}
	return fmt.Sprintf("vstore: document %q degraded (no intact versions): %s", e.ID, e.Reason)
}

func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// markDegradedLocked flips the document into degraded mode; the caller
// holds st.mu (write). Returns true on the first flip (so counters
// move once); re-marking keeps the original reason — the first damage
// report is the root cause.
func (s *Store) markDegradedLocked(sh *shard, st *docState, reason string) bool {
	if st.degraded {
		return false
	}
	st.degraded = true
	st.degradedReason = reason
	sh.stats.degraded.Add(1)
	return true
}

// Degraded reports whether id serves degraded, and why. The HTTP layer
// uses it to stamp Warning headers on otherwise-successful reads.
func (s *Store) Degraded(id string) (bool, string) {
	st := s.shardFor(id).lookup(id)
	if st == nil {
		return false, ""
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.degraded, st.degradedReason
}

// DegradedDocs is how many documents currently serve degraded.
func (s *Store) DegradedDocs() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.stats.degraded.Load()
	}
	return n
}
