package vstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"xydiff/internal/diff"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
	"xydiff/internal/store"
)

// ErrNeedsMigration reports that a directory holds the old
// per-document store layout; `xystore -dir DIR migrate` converts it to
// the sharded segment layout in place (with a backup).
var ErrNeedsMigration = errors.New("vstore: directory uses the per-document store layout; run `xystore migrate`")

const (
	manifestName   = "MANIFEST.json"
	manifestFormat = "vstore-v1"
	shardDirFmt    = "shard-%03d"
	docsDirName    = "docs"
)

// manifest is the engine marker at the directory root. The shard count
// is fixed here at creation; reopening uses the recorded count
// regardless of Config.Shards, because record placement depends on it.
type manifest struct {
	Format string `json:"format"`
	Shards int    `json:"shards"`
}

func shardDirName(idx int) string { return fmt.Sprintf(shardDirFmt, idx) }

// Open loads (or creates) a sharded store under dir: per-document
// snapshots are read as raw bytes, segment journals are replayed on
// top in sequence order, torn segment tails are truncated, and the
// per-shard group-commit writers start accepting Puts. Mid-log damage
// refuses to open with an error matching store.ErrCorrupt naming the
// file and offset. A directory in the old per-document layout is
// refused with ErrNeedsMigration.
func Open(dir string, opts diff.Options, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	fsys := cfg.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: open %s: %w", dir, err)
	}
	m, err := loadOrCreateManifest(fsys, dir, cfg.Shards)
	if err != nil {
		return nil, err
	}
	cfg.Shards = m.Shards
	s := &Store{
		opts:  opts,
		cfg:   cfg,
		dir:   dir,
		fs:    fsys,
		cache: newVersionCache(cfg.CacheSize),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			idx:        i,
			dir:        filepath.Join(dir, shardDirName(i)),
			docs:       make(map[string]*docState),
			commitCh:   make(chan *commitReq, cfg.QueueDepth),
			writerDone: make(chan struct{}),
		}
		if err := fsys.MkdirAll(sh.dir, 0o755); err != nil {
			return nil, fmt.Errorf("vstore: create %s: %w", sh.dir, err)
		}
		if err := s.recoverShard(sh); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	s.recovery.Documents = 0
	for _, sh := range s.shards {
		s.recovery.Documents += len(sh.docs)
	}
	for _, sh := range s.shards {
		sh.seg.onSeal = s.signalCompact
		go s.committer(sh)
	}
	if cfg.Sync == store.SyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	if cfg.CompactSegments > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	s.recovery.DegradedDocs = int(s.DegradedDocs())
	if cfg.Scrub.Interval > 0 {
		s.scrubber = scrub.NewRunner(cfg.Scrub.Interval, s.ScrubPass)
		go s.scrubber.Run(context.Background())
	}
	return s, nil
}

// loadOrCreateManifest reads the engine marker, creating it for a
// fresh (or empty) directory. A non-empty directory without a manifest
// that looks like the per-document layout gets ErrNeedsMigration;
// anything else unrecognized is refused as corrupt rather than
// silently adopted.
func loadOrCreateManifest(fsys faultfs.FS, dir string, shards int) (*manifest, error) {
	path := filepath.Join(dir, manifestName)
	raw, err := fsys.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(raw, &m); jerr != nil {
			return nil, corruptf(path, -1, jerr, "unparseable manifest")
		}
		if m.Format != manifestFormat || m.Shards < 1 {
			return nil, corruptf(path, -1, nil, "unsupported manifest (format %q, %d shards)", m.Format, m.Shards)
		}
		return &m, nil
	case os.IsNotExist(err):
		entries, rerr := fsys.ReadDir(dir)
		if rerr != nil {
			return nil, fmt.Errorf("vstore: read %s: %w", dir, rerr)
		}
		if oldLayout(fsys, dir, entries) {
			return nil, fmt.Errorf("%w (%s)", ErrNeedsMigration, dir)
		}
		for _, e := range entries {
			// Tolerate leftover temp files (they start with ".") and
			// shard directories from a crash before the manifest rename.
			if n := e.Name(); !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "shard-") {
				return nil, corruptf(path, -1, nil, "directory %s is non-empty (%s) but has no manifest", dir, n)
			}
		}
		m := &manifest{Format: manifestFormat, Shards: shards}
		blob, _ := json.MarshalIndent(m, "", "  ")
		blob = append(blob, '\n')
		write := func(w io.Writer) (int64, error) {
			n, werr := w.Write(blob)
			return int64(n), werr
		}
		if werr := writeAtomic(fsys, path, write); werr != nil {
			return nil, fmt.Errorf("vstore: write manifest: %w", werr)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("vstore: read manifest: %w", err)
	}
}

// oldLayout recognizes a per-document store directory: journal-*.log
// files at the root, or document subdirectories carrying a "versions"
// counter.
func oldLayout(fsys faultfs.FS, dir string, entries []os.DirEntry) bool {
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "journal-") && strings.HasSuffix(e.Name(), ".log") {
			return true
		}
		if e.IsDir() {
			if _, err := fsys.Stat(filepath.Join(dir, e.Name(), "versions")); err == nil {
				return true
			}
		}
	}
	return false
}

// recoverShard rebuilds one shard's documents: snapshots first (raw
// bytes, no parsing — trees materialize lazily through the LRU), then
// the segment journals replayed in sequence order on top.
func (s *Store) recoverShard(sh *shard) error {
	docsDir := filepath.Join(sh.dir, docsDirName)
	if entries, err := s.fs.ReadDir(docsDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() || strings.Contains(e.Name(), scrub.QuarantineSuffix) {
				continue
			}
			id := unescapeID(e.Name())
			sub := filepath.Join(docsDir, e.Name())
			st, err := loadSnapshot(s.fs, sub)
			if err != nil {
				if !s.cfg.OpenDegraded {
					return err
				}
				// Set the damaged snapshot aside and leave a degraded
				// placeholder: the segments may still rebuild the
				// document; if they cannot, reads get ErrDegraded
				// rather than a silent 404.
				if _, qerr := scrub.Quarantine(s.fs, sub); qerr != nil {
					return fmt.Errorf("vstore: %w (and quarantine failed: %w)", err, qerr)
				}
				s.recovery.Quarantined++
				sh.stats.quarantined.Add(1)
				st = &docState{}
				s.markDegradedLocked(sh, st, fmt.Sprintf("snapshot quarantined at open: %v", err))
				sh.docs[id] = st
				continue
			}
			if st != nil {
				sh.docs[id] = st
				s.recovery.SnapshotVersions += st.versions
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("vstore: read %s: %w", docsDir, err)
	}
	entries, err := s.fs.ReadDir(sh.dir)
	if err != nil {
		return fmt.Errorf("vstore: read %s: %w", sh.dir, err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		path := filepath.Join(sh.dir, segName(seq))
		if err := s.replaySegment(sh, path); err != nil {
			var ce *store.CorruptError
			if !s.cfg.OpenDegraded || !errors.As(err, &ce) {
				return err
			}
			// Mid-segment damage in degraded mode: quarantine the file
			// and keep going. Records already replayed from it stand;
			// whatever followed the damage is unprovable, so every
			// document known so far is conservatively degraded (later
			// segments re-anchor new documents with base records, and
			// version jumps mark survivors precisely).
			if _, qerr := scrub.Quarantine(s.fs, path); qerr != nil {
				return fmt.Errorf("vstore: %w (and quarantine failed: %w)", err, qerr)
			}
			s.recovery.Quarantined++
			sh.stats.quarantined.Add(1)
			reason := fmt.Sprintf("segment %s quarantined at open: %v", segName(seq), ce.Reason)
			for _, st := range sh.docs {
				st.mu.Lock()
				s.markDegradedLocked(sh, st, reason)
				st.mu.Unlock()
			}
		}
	}
	next := 1
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	sh.seg = newSegmentWriter(s.fs, sh.dir, next, s.cfg.SegmentBytes)
	return nil
}

// loadSnapshot reads one document's snapshot directory as raw bytes.
// A directory without a versions counter is not corrupt — it is a
// snapshot whose final rename never happened (crash mid-compaction);
// the segments still carry the document, so the half-snapshot is
// ignored.
func loadSnapshot(fsys faultfs.FS, sub string) (*docState, error) {
	counterPath := filepath.Join(sub, "versions")
	raw, err := fsys.ReadFile(counterPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, corruptf(counterPath, -1, err, "unreadable version counter")
	}
	versions, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil || versions < 1 {
		return nil, corruptf(counterPath, -1, nil, "bad version counter %q", raw)
	}
	v1Path := filepath.Join(sub, "v1.xml")
	base, err := fsys.ReadFile(v1Path)
	if err != nil {
		return nil, corruptf(v1Path, -1, err, "unreadable base version")
	}
	st := &docState{versions: versions, base: base, snapVersions: versions}
	for v := 1; v < versions; v++ {
		dPath := filepath.Join(sub, deltaFile(v))
		dRaw, err := fsys.ReadFile(dPath)
		if err != nil {
			return nil, corruptf(dPath, -1, err, "unreadable delta %d", v)
		}
		st.deltas = append(st.deltas, dRaw)
	}
	if err := verifySums(fsys, sub, st); err != nil {
		return nil, err
	}
	return st, nil
}

// verifySums checks the loaded snapshot bytes against the checksum
// manifest, when one exists. The bytes are already in hand, so the
// check costs one CRC pass — bit rot in a snapshot is caught at open,
// before a reader can be handed a version built from it. Snapshots
// written before the manifest existed (or migrated from the
// per-document layout) have no sums file and are accepted as before.
func verifySums(fsys faultfs.FS, sub string, st *docState) error {
	sumsPath := filepath.Join(sub, sumsName)
	raw, err := fsys.ReadFile(sumsPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return corruptf(sumsPath, -1, err, "unreadable checksum manifest")
	}
	sums, err := parseSums(raw)
	if err != nil {
		return corruptf(sumsPath, -1, err, "bad checksum manifest")
	}
	check := func(name string, b []byte) error {
		want, ok := sums[name]
		if !ok {
			return corruptf(sumsPath, -1, nil, "manifest has no entry for %s", name)
		}
		if got := scrub.Checksum(b); got != want {
			return corruptf(filepath.Join(sub, name), -1, nil, "checksum mismatch (manifest %08x, computed %08x)", want, got)
		}
		return nil
	}
	if err := check("v1.xml", st.base); err != nil {
		return err
	}
	for v := 1; v < st.versions; v++ {
		if err := check(deltaFile(v), st.deltas[v-1]); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment folds one segment's records into the shard's document
// states. Bodies stay serialized; only framing, checksums and version
// sequencing are validated here, so reopening a million-document store
// parses nothing. A partial record at the tail is truncated away
// (TornTails); damage anywhere else refuses recovery with an error
// matching store.ErrCorrupt naming the file and offset.
func (s *Store) replaySegment(sh *shard, path string) error {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return corruptf(path, -1, err, "unreadable segment")
	}
	s.recovery.JournalBytes += int64(len(data))
	off := int64(0)
	for int(off) < len(data) {
		rem := int64(len(data)) - off
		if rem < segHeaderLen {
			if err := s.truncateTorn(path, off); err != nil {
				return err
			}
			break
		}
		length := int64(binary.BigEndian.Uint32(data[off : off+4]))
		if length == 0 || length > maxRecordLen {
			return corruptf(path, off, nil, "invalid record length %d", length)
		}
		if rem-segHeaderLen < length {
			if err := s.truncateTorn(path, off); err != nil {
				return err
			}
			break
		}
		wantCRC := binary.BigEndian.Uint32(data[off+4 : off+8])
		payload := data[off+segHeaderLen : off+segHeaderLen+length]
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return corruptf(path, off, nil, "checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
		}
		kind, id, version, body, err := decodePayload(payload)
		if err != nil {
			return corruptf(path, off, err, "undecodable record")
		}
		if err := s.applyRecord(sh, path, off, kind, id, version, body); err != nil {
			return err
		}
		off += segHeaderLen + length
	}
	return nil
}

// truncateTorn cuts a segment back to the end of its last complete
// record. The torn batch's Puts never returned success, so dropping it
// loses nothing acknowledged.
func (s *Store) truncateTorn(path string, off int64) error {
	s.recovery.TornTails++
	if err := s.fs.Truncate(path, off); err != nil {
		return fmt.Errorf("vstore: truncate torn segment tail %s at %d: %w", path, off, err)
	}
	return nil
}

// applyRecord folds one verified segment record into its document's
// state, skipping records a snapshot already covers. The record body
// is copied, not retained: the segment buffer is large and transient.
func (s *Store) applyRecord(sh *shard, path string, off int64, kind byte, id string, version int, body []byte) error {
	st := sh.docs[id]
	switch kind {
	case recordBase:
		if version != 1 {
			return corruptf(path, off, nil, "base record for %q claims version %d", id, version)
		}
		if st != nil && st.versions >= 1 {
			s.recovery.JournalSkipped++
			return nil
		}
		if st == nil {
			st = &docState{}
			sh.docs[id] = st
		}
		st.base = append([]byte(nil), body...)
		st.versions = 1
		s.recovery.JournalRecords++
		return nil
	case recordDelta:
		if st == nil || st.versions == 0 {
			if s.cfg.OpenDegraded {
				// The base this delta builds on was lost with a
				// quarantined file. The delta alone reconstructs
				// nothing; keep (or create) a degraded placeholder so
				// the document answers ErrDegraded, not 404.
				if st == nil {
					st = &docState{}
					sh.docs[id] = st
				}
				st.mu.Lock()
				s.markDegradedLocked(sh, st, fmt.Sprintf("delta record v%d in %s has no surviving base", version, filepath.Base(path)))
				st.mu.Unlock()
				s.recovery.JournalSkipped++
				return nil
			}
			return corruptf(path, off, nil, "delta record for %q version %d but no base version", id, version)
		}
		if version <= st.versions {
			s.recovery.JournalSkipped++
			return nil
		}
		if version != st.versions+1 {
			if s.cfg.OpenDegraded {
				// Versions between st.versions and this record were in
				// a quarantined file; the chain ends at the last intact
				// version and later records for the document are
				// unappliable.
				st.mu.Lock()
				s.markDegradedLocked(sh, st, fmt.Sprintf("versions %d..%d lost to a quarantined file", st.versions+1, version-1))
				st.mu.Unlock()
				s.recovery.JournalSkipped++
				return nil
			}
			return corruptf(path, off, nil, "record for %q jumps to version %d after %d", id, version, st.versions)
		}
		st.deltas = append(st.deltas, append([]byte(nil), body...))
		st.versions++
		s.recovery.JournalRecords++
		return nil
	default:
		return corruptf(path, off, nil, "unknown record kind %d", kind)
	}
}

// corruptf builds a store.CorruptError for file at offset (use -1 for
// whole-file failures), so callers test with errors.Is(err,
// store.ErrCorrupt) regardless of engine.
func corruptf(file string, offset int64, err error, format string, args ...any) *store.CorruptError {
	return &store.CorruptError{File: file, Offset: offset, Reason: fmt.Sprintf(format, args...), Err: err}
}

// writeAtomic writes via a temporary file in path's directory, syncs,
// and renames into place, so path is never observed half-written.
func writeAtomic(fsys faultfs.FS, path string, write func(io.Writer) (int64, error)) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer fsys.Remove(tmp) // no-op once renamed
	if _, err := write(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one to report
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

func deltaFile(n int) string { return fmt.Sprintf("delta-%04d.xml", n) }
