package vstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/store"
)

// The PR-2 crash matrix, extended to segment logs: the filesystem dies
// at every write, sync, rename, remove and open along a workload that
// exercises group-committed appends, segment rotation, checkpointing
// (snapshot + retirement) and post-checkpoint appends. The contract is
// unchanged — every version acknowledged before the crash reconstructs
// byte-identically after reopening, and a crash never reads back as
// corruption.

// ackedVersion is one Put the store acknowledged before the crash.
type ackedVersion struct {
	id      string
	version int
	want    string // serialized reconstruction at acknowledgement time
}

// crashCfg keeps the matrix small and rotation-happy: few shards, tiny
// segments so the workload crosses segment boundaries.
func crashCfg(fsys faultfs.FS) Config {
	return Config{
		Shards:          2,
		Sync:            store.SyncAlways,
		SegmentBytes:    192,
		CompactSegments: -1, // deterministic: no background compactor
		FS:              fsys,
	}
}

// crashWorkload drives a fixed Put/Checkpoint sequence over fsys,
// recording every acknowledged version. It stops at the first injected
// failure (the simulated process is dead) and never fails the test for
// store errors — those are the point.
func crashWorkload(t *testing.T, dir string, fsys faultfs.FS) []ackedVersion {
	t.Helper()
	s, err := Open(dir, diff.Options{}, crashCfg(fsys))
	if err != nil {
		return nil
	}
	defer s.Close()
	var acked []ackedVersion
	record := func(id string, v int) bool {
		doc, err := s.Version(id, v)
		if err != nil {
			t.Fatalf("reconstruct just-acknowledged %s v%d: %v", id, v, err)
		}
		acked = append(acked, ackedVersion{id: id, version: v, want: doc.String()})
		return true
	}
	put := func(id, xml string) bool {
		v, _, err := s.Put(id, parse(t, xml))
		return err == nil && record(id, v)
	}
	steps := []func() bool{
		// Phase 1: segment appends across both shards.
		func() bool { return put("a", `<r><x>1</x></r>`) },
		func() bool { return put("a", `<r><x>2</x><y/></r>`) },
		func() bool { return put("b", `<doc><only/></doc>`) },
		func() bool { return put("c", `<list><i>1</i><i>2</i></list>`) },
		// Phase 2: snapshot + retirement.
		func() bool { return s.Checkpoint() == nil },
		// Phase 3: appends after the checkpoint (delta-only segments).
		func() bool { return put("a", `<r><x>3</x></r>`) },
		func() bool { return put("b", `<doc><only/><more/></doc>`) },
		func() bool { return s.Checkpoint() == nil },
	}
	for _, step := range steps {
		if !step() {
			break
		}
	}
	return acked
}

// verifyAcked reopens dir through the real filesystem and checks that
// every version the crashed run acknowledged reconstructs identically.
func verifyAcked(t *testing.T, dir string, acked []ackedVersion, scenario string) {
	t.Helper()
	s, err := Open(dir, diff.Options{}, Config{Shards: 2, Sync: store.SyncOff, CompactSegments: -1})
	if err != nil {
		if errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("%s: crash produced data recovery calls corrupt: %v", scenario, err)
		}
		t.Fatalf("%s: reopen after crash: %v", scenario, err)
	}
	defer s.Close()
	for _, a := range acked {
		doc, err := s.Version(a.id, a.version)
		if err != nil {
			t.Errorf("%s: acknowledged %s v%d lost: %v", scenario, a.id, a.version, err)
			continue
		}
		if got := doc.String(); got != a.want {
			t.Errorf("%s: %s v%d differs after crash:\n got %q\nwant %q",
				scenario, a.id, a.version, got, a.want)
		}
	}
}

// TestCrashMatrix crashes the filesystem at every write, sync, rename,
// remove and open along the workload (appends, rotation, snapshot,
// retirement, more appends) and asserts that reopening reconstructs
// every acknowledged version byte-identically. The rename and remove
// columns are exactly the "crash between snapshot rename and segment
// retirement" scenarios.
func TestCrashMatrix(t *testing.T) {
	// Counting pass: how many of each op does the clean workload issue?
	clean := faultfs.Wrap(faultfs.OS{})
	cleanAcked := crashWorkload(t, t.TempDir(), clean)
	if len(cleanAcked) != 6 {
		t.Fatalf("clean workload acknowledged %d versions, want 6", len(cleanAcked))
	}
	for _, op := range []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename, faultfs.OpRemove, faultfs.OpOpen} {
		total := clean.Count(op)
		if total == 0 {
			t.Fatalf("clean workload performs no %s ops; matrix would be vacuous", op)
		}
		for k := 1; k <= total; k++ {
			scenario := fmt.Sprintf("crash at %s #%d/%d", op, k, total)
			dir := t.TempDir()
			fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{Op: op, Countdown: k, Crash: true})
			acked := crashWorkload(t, dir, fsys)
			verifyAcked(t, dir, acked, scenario)
		}
	}
}

// TestCrashTornWrite is the short-write variant: the crash persists
// only a prefix of a segment append, which recovery must truncate away
// as a torn tail.
func TestCrashTornWrite(t *testing.T) {
	clean := faultfs.Wrap(faultfs.OS{})
	crashWorkload(t, t.TempDir(), clean)
	total := clean.Count(faultfs.OpWrite)
	for k := 1; k <= total; k++ {
		for _, short := range []int{1, 7, 40} {
			scenario := fmt.Sprintf("torn write #%d/%d after %d bytes", k, total, short)
			dir := t.TempDir()
			fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{
				Op: faultfs.OpWrite, Countdown: k, ShortBytes: short, Crash: true,
			})
			acked := crashWorkload(t, dir, fsys)
			verifyAcked(t, dir, acked, scenario)
		}
	}
}

// TestCrashTornBatchMidGroupCommit is the sharded engine's new failure
// mode: concurrent writers group-commit into one segment append, and
// the crash tears that multi-record batch mid-write. Acknowledged Puts
// (from earlier durable batches) must survive; the Puts in the torn
// batch never got an acknowledgement, so recovery truncating them away
// loses nothing.
func TestCrashTornBatchMidGroupCommit(t *testing.T) {
	const writers = 16
	for _, short := range []int{3, 25, 120} {
		for k := 2; k <= 6; k++ {
			scenario := fmt.Sprintf("torn batch at write #%d, %d bytes persisted", k, short)
			dir := t.TempDir()
			fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{
				Op: faultfs.OpWrite, Countdown: k, ShortBytes: short, Crash: true,
			})
			cfg := crashCfg(fsys)
			cfg.Shards = 1 // all writers group-commit into one segment
			cfg.MaxDelay = 3 * time.Millisecond
			s, err := Open(dir, diff.Options{}, cfg)
			if err != nil {
				t.Fatalf("%s: open: %v", scenario, err)
			}
			var mu sync.Mutex
			var acked []ackedVersion
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := fmt.Sprintf("doc-%02d", w)
					for v := 1; v <= 3; v++ {
						xml := fmt.Sprintf(`<r><w>%d</w><v>%d</v></r>`, w, v)
						doc, perr := dom.ParseString(xml)
						if perr != nil {
							return
						}
						if _, _, perr := s.Put(id, doc); perr != nil {
							return // crashed mid-run: stop like a dead client
						}
						mu.Lock()
						acked = append(acked, ackedVersion{id: id, version: v, want: xml})
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			s.Close()
			verifyAcked(t, dir, acked, scenario)
		}
	}
}
