package vstore

import (
	"container/list"
	"sync"

	"xydiff/internal/dom"
)

// versionCache is the bounded LRU of materialized current versions.
// Documents outside it keep only serialized bytes in their docState;
// a cache miss replays base + deltas once and re-inserts the tree, so
// hot documents pay reconstruction once per residency instead of once
// per read. Entries are keyed by document id and validated against the
// version count, so a stale tree can never be served.
//
// The cached tree is shared between the store and readers that Clone
// it; PutContext hands the cached old version to the diff, which never
// mutates its left input.
type versionCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	id       string
	doc      *dom.Node
	versions int
}

func newVersionCache(max int) *versionCache {
	return &versionCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached tree for id when it is current at the given
// version count, nil otherwise.
func (c *versionCache) get(id string, versions int) *dom.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.items[id]
	if e == nil {
		return nil
	}
	ent := e.Value.(*cacheEntry)
	if ent.versions != versions {
		// Stale (the entry lost a race with a newer Put); drop it.
		c.ll.Remove(e)
		delete(c.items, id)
		return nil
	}
	c.ll.MoveToFront(e)
	return ent.doc
}

// put installs (or refreshes) the tree for id at the given version
// count, evicting least-recently-used entries beyond the cap.
func (c *versionCache) put(id string, doc *dom.Node, versions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.items[id]; e != nil {
		ent := e.Value.(*cacheEntry)
		if versions < ent.versions {
			return // never replace a newer tree with an older one
		}
		ent.doc, ent.versions = doc, versions
		c.ll.MoveToFront(e)
		return
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, doc: doc, versions: versions})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).id)
	}
}

// len reports how many trees are resident.
func (c *versionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
