package vstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xydiff/internal/diff"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
)

// scrubCfg is a one-shard store that rotates the segment after every
// record (so sealed segments exist without compaction) and never
// compacts on its own — each test controls folding explicitly.
func scrubCfg() Config {
	return Config{
		Shards:          1,
		SegmentBytes:    1,
		CompactSegments: -1,
		Scrub:           ScrubConfig{Throttle: -1},
	}
}

// seedDoc writes n versions of one document and returns the serialized
// form of every version — the ground truth every corruption test
// byte-compares against afterwards.
func seedDoc(t *testing.T, s *Store, id string, n int) []string {
	t.Helper()
	var want []string
	for v := 1; v <= n; v++ {
		body := fmt.Sprintf(`<doc><rev>%d</rev><body>payload %d</body></doc>`, v, v)
		if _, _, err := s.Put(id, parse(t, body)); err != nil {
			t.Fatalf("Put v%d: %v", v, err)
		}
		doc, err := s.Version(id, v)
		if err != nil {
			t.Fatalf("Version(%d): %v", v, err)
		}
		want = append(want, doc.String())
	}
	return want
}

// checkVersions compares every reconstructable version against the
// ground truth captured before corruption.
func checkVersions(t *testing.T, s *Store, id string, want []string) {
	t.Helper()
	for v := 1; v <= len(want); v++ {
		doc, err := s.Version(id, v)
		if err != nil {
			t.Fatalf("Version(%s,%d): %v", id, v, err)
		}
		if got := doc.String(); got != want[v-1] {
			t.Fatalf("version %d diverged after scrub:\n got %s\nwant %s", v, got, want[v-1])
		}
	}
}

// sealedSegs lists the shard-000 sealed segment paths (all but the
// highest sequence, which is the active one).
func sealedSegs(t *testing.T, dir string) []string {
	t.Helper()
	shardDir := filepath.Join(dir, shardDirName(0))
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		t.Fatalf("want ≥2 segments for a sealed victim, have %v", names)
	}
	var paths []string
	for _, n := range names[:len(names)-1] {
		paths = append(paths, filepath.Join(shardDir, n))
	}
	return paths
}

func TestScrubCleanPass(t *testing.T) {
	s, _ := openTest(t, scrubCfg())
	want := seedDoc(t, s, "doc", 4)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedDoc(t, s, "doc2", 2) // fresh sealed segments after the checkpoint

	rep, err := s.ScrubPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Found != 0 {
		t.Fatalf("clean store reported damage: %+v", rep.Findings)
	}
	if rep.SnapshotsScanned == 0 || rep.SegmentsScanned == 0 {
		t.Fatalf("pass skipped files: %+v", rep)
	}
	if rep.BytesScanned == 0 || rep.RecordsVerified == 0 {
		t.Fatalf("no verification volume: %+v", rep)
	}
	st := s.StorageStats()
	if st.Scrub.Cycles != 1 || st.Scrub.BytesScanned != rep.BytesScanned || st.Scrub.LastUnix == 0 {
		t.Fatalf("counters not folded into stats: %+v", st.Scrub)
	}
	checkVersions(t, s, "doc", want)
}

func TestScrubRepairsCorruptSealedSegment(t *testing.T) {
	s, dir := openTest(t, scrubCfg())
	want := seedDoc(t, s, "doc", 5)

	victim := sealedSegs(t, dir)[0]
	if err := faultfs.FlipBit(faultfs.OS{}, victim, 12, 3); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Found == 0 || rep.Repaired == 0 || rep.Quarantined != 0 {
		t.Fatalf("want repair, got %+v", rep)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("damaged segment still on disk: %v", err)
	}
	if deg, _ := s.Degraded("doc"); deg {
		t.Fatal("repaired document marked degraded")
	}
	checkVersions(t, s, "doc", want)

	// The repaired layout must also survive a reopen byte-identically.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, diff.Options{}, scrubCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkVersions(t, s2, "doc", want)
	if rep2, _ := s2.ScrubPass(context.Background()); rep2.Found != 0 {
		t.Fatalf("repaired store still reports damage: %+v", rep2.Findings)
	}
}

func TestScrubQuarantinesSegmentWithoutRepair(t *testing.T) {
	cfg := scrubCfg()
	cfg.Scrub.NoRepair = true
	s, dir := openTest(t, cfg)
	want := seedDoc(t, s, "doc", 4)

	victim := sealedSegs(t, dir)[0]
	if err := faultfs.ZeroRange(faultfs.OS{}, victim, 4, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined == 0 || rep.Repaired != 0 {
		t.Fatalf("want quarantine, got %+v", rep)
	}
	if _, err := os.Stat(victim + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("original damaged file still present")
	}
	// Un-snapshotted history relied on that segment: the document is
	// flagged degraded, but its resident chain keeps serving every
	// version while the store stays open.
	if deg, reason := s.Degraded("doc"); !deg || !strings.Contains(reason, "quarantined") {
		t.Fatalf("Degraded = %v, %q", deg, reason)
	}
	if s.DegradedDocs() != 1 {
		t.Fatalf("DegradedDocs = %d", s.DegradedDocs())
	}
	checkVersions(t, s, "doc", want)
	st := s.StorageStats()
	if st.Quarantined != 1 || st.DegradedDocs != 1 {
		t.Fatalf("stats = quarantined %d degraded %d", st.Quarantined, st.DegradedDocs)
	}
}

func TestScrubRepairsCorruptSnapshot(t *testing.T) {
	s, dir := openTest(t, scrubCfg())
	want := seedDoc(t, s, "doc", 4)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, shardDirName(0), docsDirName, escapeID("doc"))
	for _, victim := range []string{"v1.xml", deltaFile(2), sumsName} {
		if err := faultfs.FlipBit(faultfs.OS{}, filepath.Join(sub, victim), 3, 0); err != nil {
			t.Fatal(err)
		}
		rep, err := s.ScrubPass(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Found != 1 || rep.Repaired != 1 {
			t.Fatalf("corrupt %s: want 1 repair, got %+v", victim, rep)
		}
		if rep2, _ := s.ScrubPass(context.Background()); rep2.Found != 0 {
			t.Fatalf("after repairing %s still damaged: %+v", victim, rep2.Findings)
		}
		checkVersions(t, s, "doc", want)
	}

	// The rewritten snapshot must be what recovery reads back.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, diff.Options{}, scrubCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkVersions(t, s2, "doc", want)
}

func TestScrubQuarantinesSnapshotWithoutRepair(t *testing.T) {
	cfg := scrubCfg()
	cfg.Scrub.NoRepair = true
	s, dir := openTest(t, cfg)
	want := seedDoc(t, s, "doc", 3)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, shardDirName(0), docsDirName, escapeID("doc"))
	if err := faultfs.TruncateTail(faultfs.OS{}, filepath.Join(sub, "v1.xml"), 5); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("want 1 quarantine, got %+v", rep)
	}
	if _, err := os.Stat(sub + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("quarantined snapshot dir missing: %v", err)
	}
	if deg, _ := s.Degraded("doc"); !deg {
		t.Fatal("document not degraded after snapshot quarantine")
	}
	// The resident chain still serves everything…
	checkVersions(t, s, "doc", want)
	// …and the next compaction writes a fresh full snapshot, after
	// which a pass is clean again.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if rep2, _ := s.ScrubPass(context.Background()); rep2.Found != 0 {
		t.Fatalf("rewritten snapshot still damaged: %+v", rep2.Findings)
	}
}

func TestDegradedErrorShape(t *testing.T) {
	err := error(&DegradedError{ID: "doc", Reason: "segment quarantined", Intact: 3})
	if !errors.Is(err, ErrDegraded) {
		t.Fatal("DegradedError does not match ErrDegraded")
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Intact != 3 {
		t.Fatalf("errors.As = %+v", de)
	}
	if msg := err.Error(); !strings.Contains(msg, "doc") || !strings.Contains(msg, "degraded") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestBackgroundScrubberRunsAndStops(t *testing.T) {
	cfg := scrubCfg()
	cfg.Scrub.Interval = 10 * time.Millisecond
	s, dir := openTest(t, cfg)
	seedDoc(t, s, "doc", 3)
	victim := sealedSegs(t, dir)[0]
	if err := faultfs.FlipBit(faultfs.OS{}, victim, 10, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.StorageStats(); st.Scrub.Repaired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never repaired; stats %+v", s.StorageStats().Scrub)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("damaged segment still present after background repair")
	}
	if err := s.Close(); err != nil { // must stop the runner cleanly
		t.Fatal(err)
	}
}
