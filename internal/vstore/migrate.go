package vstore

import (
	"bytes"
	"fmt"
	"os"

	"xydiff/internal/diff"
	"xydiff/internal/faultfs"
	"xydiff/internal/store"
)

// Migration converts a per-document store directory (package store's
// layout: journal-*.log files plus one snapshot directory per
// document) into the sharded segment layout, without re-diffing
// anything: each document's base version and delta chain are carried
// over verbatim, so every reconstruction stays byte-identical. The
// conversion is built beside the original and swapped in with two
// renames, keeping the original as a backup:
//
//	DIR.migrating    the new layout, built from scratch (removed and
//	                 rebuilt if a previous attempt died)
//	DIR.pre-migrate  the untouched original, renamed here on success
//
// A crash before the first rename leaves DIR untouched; between the
// renames, DIR.migrating is complete and DIR is the backup — rerunning
// Migrate reports what to do.

// Import installs a document wholesale: serialized base version plus
// delta chain, written straight to the document's snapshot (no
// segment records, no re-diffing). It is the migration path's way to
// carry a chain over byte-identically; it refuses to overwrite an
// existing document.
func (s *Store) Import(id string, base []byte, deltas [][]byte) error {
	if len(base) == 0 {
		return fmt.Errorf("vstore: import %s: empty base version", id)
	}
	sh := s.shardFor(id)
	st := sh.state(id)
	st.mu.Lock()
	if st.versions != 0 {
		st.mu.Unlock()
		return fmt.Errorf("vstore: import %s: document already exists with %d versions", id, st.versions)
	}
	st.base = append([]byte(nil), base...)
	for _, d := range deltas {
		st.deltas = append(st.deltas, append([]byte(nil), d...))
	}
	st.versions = 1 + len(deltas)
	st.mu.Unlock()
	if err := s.snapshotDoc(sh, id, st, false); err != nil {
		return fmt.Errorf("vstore: import %s: %w", id, err)
	}
	return nil
}

// Migrate converts the per-document store at dir into the sharded
// layout in place: the new store is built under dir+".migrating",
// verified, and swapped in, with the original kept at
// dir+".pre-migrate" as the backup/abort path (remove it once
// satisfied, or rename it back over dir to abort). Returns the
// document count carried over.
func Migrate(dir string, opts diff.Options, cfg Config) (int, error) {
	fsys := cfg.withDefaults().FS
	backup := dir + ".pre-migrate"
	tmp := dir + ".migrating"
	if _, err := fsys.Stat(backup); err == nil {
		return 0, fmt.Errorf("vstore: migrate %s: backup %s already exists — a previous migration finished (remove the backup) or needs aborting (rename it back over %s)", dir, backup, dir)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: %w", dir, err)
	}
	if _, err := fsys.Stat(manifestPath(dir)); err == nil {
		return 0, fmt.Errorf("vstore: migrate %s: already in sharded layout", dir)
	}
	if !oldLayout(fsys, dir, entries) {
		return 0, fmt.Errorf("vstore: migrate %s: not a per-document store directory", dir)
	}
	// Load the old store (replaying its journals) through the real
	// reader, so exactly the acknowledged state carries over.
	old, err := store.Load(dir, opts)
	if err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: load old store: %w", dir, err)
	}
	if err := removeAll(fsys, tmp); err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: clear stale %s: %w", dir, tmp, err)
	}
	next, err := Open(tmp, opts, cfg)
	if err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: create new layout: %w", dir, err)
	}
	count := 0
	for _, id := range old.IDs() {
		base, deltas, err := serializeChain(old, id)
		if err != nil {
			_ = next.Close() // the serialize error is the one worth reporting
			return 0, fmt.Errorf("vstore: migrate %s: %w", dir, err)
		}
		if err := next.Import(id, base, deltas); err != nil {
			_ = next.Close() // the import error is the one worth reporting
			return 0, err
		}
		count++
	}
	if err := next.Close(); err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: close new layout: %w", dir, err)
	}
	// The swap: original aside first, then the new layout into place.
	// A crash in between leaves both directories present and intact.
	if err := fsys.Rename(dir, backup); err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: move original aside: %w", dir, err)
	}
	if err := fsys.Rename(tmp, dir); err != nil {
		return 0, fmt.Errorf("vstore: migrate %s: install new layout (original preserved at %s): %w", dir, backup, err)
	}
	return count, nil
}

// serializeChain renders one document's base version and delta chain
// from the old engine.
func serializeChain(old *store.Store, id string) (base []byte, deltas [][]byte, err error) {
	v1, err := old.Version(id, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: reconstruct version 1: %w", id, err)
	}
	var buf bytes.Buffer
	if _, err := v1.WriteTo(&buf); err != nil {
		return nil, nil, fmt.Errorf("%s: serialize version 1: %w", id, err)
	}
	base = append([]byte(nil), buf.Bytes()...)
	for n := 1; n < old.Versions(id); n++ {
		d, err := old.Delta(id, n)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: delta %d: %w", id, n, err)
		}
		buf.Reset()
		if _, err := d.WriteTo(&buf); err != nil {
			return nil, nil, fmt.Errorf("%s: serialize delta %d: %w", id, n, err)
		}
		deltas = append(deltas, append([]byte(nil), buf.Bytes()...))
	}
	return base, deltas, nil
}

func manifestPath(dir string) string { return dir + string(os.PathSeparator) + manifestName }

// removeAll removes path recursively through fsys (faultfs has no
// RemoveAll; migration only ever removes its own stale .migrating
// build).
func removeAll(fsys faultfs.FS, path string) error {
	entries, err := fsys.ReadDir(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		sub := path + string(os.PathSeparator) + e.Name()
		if e.IsDir() {
			if err := removeAll(fsys, sub); err != nil {
				return err
			}
		} else if err := fsys.Remove(sub); err != nil {
			return err
		}
	}
	return fsys.Remove(path)
}
