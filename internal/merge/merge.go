// Package merge implements the paper's synchronization scenario
// (Section 2, "Learning about changes"): "different users may modify
// the same XML document off-line, and later want to synchronize their
// respective versions. The diff algorithm could be used to detect and
// describe the modifications in order to detect conflicts and solve
// some of them."
//
// ThreeWay takes a base document and two deltas independently computed
// against it ("ours" and "theirs", each the output of diff.Diff) and
// produces a merged document: ours applies in full, then theirs is
// rebased on top through the persistent identifiers — position-free
// detachment by XID, neighbor-anchored re-attachment, and fresh-XID
// renumbering so both sides' insertions coexist. Operations that
// genuinely collide (both update the same node differently, one edits
// inside a subtree the other deletes, ...) are reported as Conflicts
// and resolved in favor of ours.
package merge

import (
	"fmt"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// ConflictKind classifies a merge conflict.
type ConflictKind uint8

// Conflict kinds.
const (
	// UpdateUpdate: both sides updated the same value differently.
	UpdateUpdate ConflictKind = iota
	// UpdateDelete: theirs updates a node ours deleted.
	UpdateDelete
	// DeleteModify: theirs deletes a subtree ours modified inside.
	DeleteModify
	// MoveMove: both sides moved the same node to different places.
	MoveMove
	// MoveDelete: theirs moves a node ours deleted.
	MoveDelete
	// Orphaned: theirs inserts into (or moves into) a parent that does
	// not exist after ours' changes.
	Orphaned
	// AttrConflict: both sides changed the same attribute differently,
	// or theirs changes an attribute of a deleted node.
	AttrConflict
)

// String returns a short name for the conflict kind.
func (k ConflictKind) String() string {
	switch k {
	case UpdateUpdate:
		return "update/update"
	case UpdateDelete:
		return "update/delete"
	case DeleteModify:
		return "delete/modify"
	case MoveMove:
		return "move/move"
	case MoveDelete:
		return "move/delete"
	case Orphaned:
		return "orphaned"
	case AttrConflict:
		return "attribute"
	default:
		return fmt.Sprintf("conflict(%d)", uint8(k))
	}
}

// Conflict reports one of theirs' operations that could not be applied
// cleanly; ours' view won.
type Conflict struct {
	Kind   ConflictKind
	XID    int64
	Theirs delta.Op
	Detail string
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s at XID %d: %s", c.Kind, c.XID, c.Detail)
}

// Result is the outcome of a three-way merge.
type Result struct {
	// Doc is the merged document: base + ours + rebased theirs.
	Doc *dom.Node
	// Conflicts lists theirs' operations that were skipped (or, for
	// moves, rolled back).
	Conflicts []Conflict
	// Applied counts theirs' operations merged in; Converged counts
	// those skipped because ours already had the same effect.
	Applied   int
	Converged int
}

// ThreeWay merges two independent deltas over a common base. base must
// carry the XIDs both deltas were computed against (the usual case:
// both sides ran diff.Diff against the same stored version). base is
// not modified. Conflict policy: ours wins; swap the arguments for the
// opposite policy.
func ThreeWay(base *dom.Node, ours, theirs *delta.Delta) (*Result, error) {
	if base == nil || base.Type != dom.Document {
		return nil, fmt.Errorf("merge: base must be a Document")
	}
	theirsDoc, err := delta.ApplyClone(base, theirs)
	if err != nil {
		return nil, fmt.Errorf("merge: theirs does not apply to base: %w", err)
	}
	merged, err := delta.ApplyClone(base, ours)
	if err != nil {
		return nil, fmt.Errorf("merge: ours does not apply to base: %w", err)
	}
	var mergedMax int64
	dom.WalkPre(merged, func(n *dom.Node) bool {
		if n.XID > mergedMax {
			mergedMax = n.XID
		}
		return true
	})
	next := mergedMax + 1
	if theirs.NextXID > next {
		next = theirs.NextXID
	}
	m := &merger{
		res:       &Result{Doc: merged},
		theirsIdx: indexByXID(theirsDoc),
		index:     indexByXID(merged),
		ours:      summarizeOurs(ours),
		remap:     make(map[int64]int64),
		alloc:     xid.NewAllocator(next),
	}

	// Mirror the apply engine's phasing so intra-delta dependencies in
	// theirs (a move into its own insert, a delete after a move-out)
	// keep working.
	for _, op := range theirs.Ops {
		m.applyValueOp(op)
	}
	for _, op := range theirs.Ops {
		if mv, ok := op.(delta.Move); ok {
			m.detachMove(mv)
		}
	}
	for _, op := range theirs.Ops {
		if del, ok := op.(delta.Delete); ok {
			m.applyDelete(del)
		}
	}
	for _, op := range theirs.Ops {
		if ins, ok := op.(delta.Insert); ok {
			m.prepareInsert(ins)
		}
	}
	m.attachPending()
	return m.res, nil
}

// oursSummary captures what ours did, for conflict detection.
type oursSummary struct {
	deleted   map[int64]bool       // every XID removed by ours
	updates   map[int64]string     // XID -> new value
	moves     map[int64]delta.Move // XID -> move op
	attrs     map[attrKey]string   // (XID, name) -> new value
	attrsGone map[attrKey]bool     // (XID, name) deleted
	touched   map[int64]bool       // XIDs ours modified in any way
}

type attrKey struct {
	xid  int64
	name string
}

func summarizeOurs(ours *delta.Delta) *oursSummary {
	s := &oursSummary{
		deleted:   make(map[int64]bool),
		updates:   make(map[int64]string),
		moves:     make(map[int64]delta.Move),
		attrs:     make(map[attrKey]string),
		attrsGone: make(map[attrKey]bool),
		touched:   make(map[int64]bool),
	}
	for _, op := range ours.Ops {
		switch o := op.(type) {
		case delta.Delete:
			for _, x := range o.XIDMap.XIDs() {
				s.deleted[x] = true
			}
			s.touched[o.Parent] = true
		case delta.Insert:
			s.touched[o.Parent] = true
		case delta.Update:
			s.updates[o.XID] = o.New
			s.touched[o.XID] = true
		case delta.Move:
			s.moves[o.XID] = o
			s.touched[o.XID] = true
			s.touched[o.FromParent] = true
			s.touched[o.ToParent] = true
		case delta.InsertAttr:
			s.attrs[attrKey{o.XID, o.Name}] = o.Value
			s.touched[o.XID] = true
		case delta.DeleteAttr:
			s.attrsGone[attrKey{o.XID, o.Name}] = true
			s.touched[o.XID] = true
		case delta.UpdateAttr:
			s.attrs[attrKey{o.XID, o.Name}] = o.New
			s.touched[o.XID] = true
		}
	}
	return s
}

// pendingAttach is a subtree waiting for a parent in the merged
// document: an insert's fresh clone or a detached move.
type pendingAttach struct {
	parentTheirs int64     // parent XID in theirs' numbering
	node         *dom.Node // the subtree to attach (merged numbering)
	theirsNode   *dom.Node // the same node in theirs' document (anchoring)
	fallbackPos  int
	move         *delta.Move // non-nil for moves (rollback info below)
	origParent   *dom.Node
	origIdx      int
}

type merger struct {
	res       *Result
	theirsIdx map[int64]*dom.Node
	index     map[int64]*dom.Node
	ours      *oursSummary
	remap     map[int64]int64 // theirs-fresh XID -> merged XID
	alloc     *xid.Allocator
	pending   []pendingAttach
}

// translate maps one of theirs' XIDs into the merged numbering.
func (m *merger) translate(x int64) int64 {
	if nu, ok := m.remap[x]; ok {
		return nu
	}
	return x
}

func (m *merger) conflict(kind ConflictKind, x int64, op delta.Op, format string, args ...any) {
	m.res.Conflicts = append(m.res.Conflicts, Conflict{
		Kind: kind, XID: x, Theirs: op, Detail: fmt.Sprintf(format, args...),
	})
}

func (m *merger) applyValueOp(op delta.Op) {
	switch o := op.(type) {
	case delta.Update:
		n := m.index[o.XID]
		if n == nil {
			m.conflict(UpdateDelete, o.XID, op, "ours deleted the node theirs updates to %q", o.New)
			return
		}
		if oursNew, ok := m.ours.updates[o.XID]; ok {
			if oursNew == o.New {
				m.res.Converged++
			} else {
				m.conflict(UpdateUpdate, o.XID, op, "ours set %q, theirs set %q", oursNew, o.New)
			}
			return
		}
		if n.Value != o.Old {
			m.conflict(UpdateUpdate, o.XID, op, "value is %q, theirs expected %q", n.Value, o.Old)
			return
		}
		n.Value = o.New
		m.res.Applied++
	case delta.InsertAttr:
		m.applyAttr(op, o.XID, o.Name, "", o.Value, false)
	case delta.DeleteAttr:
		m.applyAttr(op, o.XID, o.Name, o.Old, "", true)
	case delta.UpdateAttr:
		m.applyAttr(op, o.XID, o.Name, o.Old, o.New, false)
	}
}

func (m *merger) applyAttr(op delta.Op, x int64, name, old, new string, remove bool) {
	n := m.index[x]
	if n == nil {
		m.conflict(AttrConflict, x, op, "ours deleted the node whose attribute %s theirs changes", name)
		return
	}
	key := attrKey{x, name}
	if oursVal, ok := m.ours.attrs[key]; ok {
		if !remove && oursVal == new {
			m.res.Converged++
		} else {
			m.conflict(AttrConflict, x, op, "both sides changed attribute %s", name)
		}
		return
	}
	if m.ours.attrsGone[key] {
		if remove {
			m.res.Converged++
		} else {
			m.conflict(AttrConflict, x, op, "ours deleted attribute %s theirs changes", name)
		}
		return
	}
	if remove {
		if v, ok := n.Attribute(name); !ok || v != old {
			m.conflict(AttrConflict, x, op, "attribute %s is %q, theirs expected %q", name, v, old)
			return
		}
		n.RemoveAttribute(name)
		m.res.Applied++
		return
	}
	if old != "" { // update
		if v, ok := n.Attribute(name); !ok || v != old {
			m.conflict(AttrConflict, x, op, "attribute %s is %q, theirs expected %q", name, v, old)
			return
		}
	} else if _, exists := n.Attribute(name); exists {
		m.conflict(AttrConflict, x, op, "attribute %s already present", name)
		return
	}
	n.SetAttribute(name, new)
	m.res.Applied++
}

func (m *merger) detachMove(mv delta.Move) {
	n := m.index[mv.XID]
	if n == nil {
		m.conflict(MoveDelete, mv.XID, mv, "ours deleted the node theirs moves")
		return
	}
	if oursMv, ok := m.ours.moves[mv.XID]; ok {
		if oursMv.ToParent == m.translate(mv.ToParent) && oursMv.ToPos == mv.ToPos {
			m.res.Converged++
		} else {
			m.conflict(MoveMove, mv.XID, mv, "ours moved to %d[%d], theirs to %d[%d]",
				oursMv.ToParent, oursMv.ToPos, mv.ToParent, mv.ToPos)
		}
		return
	}
	origParent := n.Parent
	origIdx := n.Index()
	n.Detach()
	mvCopy := mv
	m.pending = append(m.pending, pendingAttach{
		parentTheirs: mv.ToParent,
		node:         n,
		theirsNode:   m.theirsIdx[mv.XID],
		fallbackPos:  mv.ToPos,
		move:         &mvCopy,
		origParent:   origParent,
		origIdx:      origIdx,
	})
}

func (m *merger) applyDelete(del delta.Delete) {
	n := m.index[del.XID]
	if n == nil {
		m.res.Converged++ // ours already deleted it (or an ancestor)
		return
	}
	for _, x := range del.XIDMap.XIDs() {
		if m.ours.touched[x] {
			m.conflict(DeleteModify, del.XID, del,
				"ours modified XID %d inside the subtree theirs deletes", x)
			return
		}
	}
	n.Detach()
	dom.WalkPre(n, func(x *dom.Node) bool {
		delete(m.index, x.XID)
		return true
	})
	m.res.Applied++
}

func (m *merger) prepareInsert(ins delta.Insert) {
	if ins.Subtree == nil {
		m.conflict(Orphaned, ins.XID, ins, "insert without content")
		return
	}
	clone := ins.Subtree.Clone()
	// Renumber: theirs' fresh identifiers would collide with ours'.
	dom.WalkPost(clone, func(n *dom.Node) bool {
		nu := m.alloc.Next()
		m.remap[n.XID] = nu
		n.XID = nu
		return true
	})
	m.pending = append(m.pending, pendingAttach{
		parentTheirs: ins.Parent,
		node:         clone,
		theirsNode:   m.theirsIdx[ins.XID],
		fallbackPos:  ins.Pos,
	})
}

// attachPending places inserts and moves, multi-pass so attachments
// into other pending subtrees resolve. Unattachable items become
// Orphaned conflicts; orphaned moves are rolled back to their original
// location so no data is lost.
func (m *merger) attachPending() {
	pending := m.pending
	for len(pending) > 0 {
		var next []pendingAttach
		progress := false
		for _, item := range pending {
			parent := m.index[m.translate(item.parentTheirs)]
			if parent == nil {
				next = append(next, item)
				continue
			}
			pos := m.anchorPosition(parent, item)
			if err := parent.InsertAt(pos, item.node); err != nil {
				// anchorPosition clamps into range, so this means the
				// merged tree is already inconsistent; keep the data at
				// the end rather than losing it.
				parent.Append(item.node)
			}
			dom.WalkPre(item.node, func(x *dom.Node) bool {
				if x.XID != 0 {
					m.index[x.XID] = x
				}
				return true
			})
			m.res.Applied++
			progress = true
		}
		if !progress {
			for _, item := range pending {
				m.conflict(Orphaned, item.node.XID, orphanOp(item),
					"target parent %d does not exist after ours' changes", item.parentTheirs)
				if item.move != nil {
					m.rollbackMove(item)
				}
			}
			return
		}
		pending = next
	}
}

// anchorPosition chooses where to attach: mimic the node's placement in
// theirs' document by locating the nearest sibling (by XID) that also
// lives under the target parent in the merged document.
func (m *merger) anchorPosition(parent *dom.Node, item pendingAttach) int {
	t := item.theirsNode
	if t != nil && t.Parent != nil {
		siblings := t.Parent.Children
		tIdx := t.Index()
		// Nearest surviving left sibling: attach right after it.
		for i := tIdx - 1; i >= 0; i-- {
			if s := m.index[m.translate(siblings[i].XID)]; s != nil && s.Parent == parent {
				return s.Index() + 1
			}
		}
		// Else nearest surviving right sibling: attach right before it.
		for i := tIdx + 1; i < len(siblings); i++ {
			if s := m.index[m.translate(siblings[i].XID)]; s != nil && s.Parent == parent {
				return s.Index()
			}
		}
	}
	if item.fallbackPos <= len(parent.Children) {
		return item.fallbackPos
	}
	return len(parent.Children)
}

// rollbackMove restores a move whose destination vanished.
func (m *merger) rollbackMove(item pendingAttach) {
	parent := item.origParent
	if parent == nil || m.index[parent.XID] == nil {
		// The original parent is gone too; keep the subtree at the end
		// of the root element rather than losing data.
		if root := m.res.Doc.Root(); root != nil {
			root.Append(item.node)
		}
		return
	}
	pos := item.origIdx
	if pos > len(parent.Children) {
		pos = len(parent.Children)
	}
	if err := parent.InsertAt(pos, item.node); err != nil {
		parent.Append(item.node) // never lose the rolled-back subtree
	}
}

func orphanOp(item pendingAttach) delta.Op {
	if item.move != nil {
		return *item.move
	}
	return delta.Insert{XID: item.node.XID, Parent: item.parentTheirs, Pos: item.fallbackPos, Subtree: item.node}
}

func indexByXID(doc *dom.Node) map[int64]*dom.Node {
	idx := make(map[int64]*dom.Node)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}
