package merge

import (
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// scenario prepares a base with XIDs and the two divergent deltas.
func scenario(t *testing.T, baseXML, oursXML, theirsXML string) (*dom.Node, *delta.Delta, *delta.Delta) {
	t.Helper()
	base, err := dom.ParseString(baseXML)
	if err != nil {
		t.Fatal(err)
	}
	oursDoc, err := dom.ParseString(oursXML)
	if err != nil {
		t.Fatal(err)
	}
	theirsDoc, err := dom.ParseString(theirsXML)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := diff.Diff(base, oursDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	theirs, err := diff.Diff(base, theirsDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return base, ours, theirs
}

func mergeOK(t *testing.T, base *dom.Node, ours, theirs *delta.Delta) *Result {
	t.Helper()
	res, err := ThreeWay(base, ours, theirs)
	if err != nil {
		t.Fatal(err)
	}
	// The merged document must always reparse (well-formed, unique XIDs
	// not required by serialization but the tree must be sound).
	if _, err := dom.ParseString(res.Doc.String()); err != nil {
		t.Fatalf("merged document broken: %v\n%s", err, res.Doc)
	}
	assertUniqueXIDs(t, res.Doc)
	return res
}

func assertUniqueXIDs(t *testing.T, doc *dom.Node) {
	t.Helper()
	seen := map[int64]string{}
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID == 0 {
			t.Errorf("node without XID at %s", n.Path())
			return true
		}
		if prev, dup := seen[n.XID]; dup {
			t.Errorf("duplicate XID %d at %s and %s", n.XID, prev, n.Path())
		}
		seen[n.XID] = n.Path()
		return true
	})
}

func TestMergeDisjointEdits(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><a>1</a><b>2</b><c>3</c></doc>`,
		`<doc><a>10</a><b>2</b><c>3</c></doc>`, // ours: update a
		`<doc><a>1</a><b>2</b><c>30</c></doc>`) // theirs: update c
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	want, _ := dom.ParseString(`<doc><a>10</a><b>2</b><c>30</c></doc>`)
	if !dom.Equal(res.Doc, want) {
		t.Fatalf("merged = %s", res.Doc)
	}
	if res.Applied != 1 {
		t.Errorf("applied = %d", res.Applied)
	}
}

func TestMergeBothInsert(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<list><item>a</item></list>`,
		`<list><item>a</item><item>ours</item></list>`,
		`<list><item>theirs</item><item>a</item></list>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	items := xpathlite.MustCompile(`//item`).Select(res.Doc)
	if len(items) != 3 {
		t.Fatalf("items = %d: %s", len(items), res.Doc)
	}
	// theirs' item was anchored before "a", ours' after it.
	var texts []string
	for _, it := range items {
		texts = append(texts, it.TextContent())
	}
	if strings.Join(texts, ",") != "theirs,a,ours" {
		t.Errorf("order = %v", texts)
	}
}

func TestMergeUpdateUpdateConflict(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><p>base</p></doc>`,
		`<doc><p>ours</p></doc>`,
		`<doc><p>theirs</p></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != UpdateUpdate {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	// Ours wins.
	if got := res.Doc.Root().TextContent(); got != "ours" {
		t.Errorf("merged text = %q", got)
	}
	if !strings.Contains(res.Conflicts[0].String(), "update/update") {
		t.Errorf("conflict string = %q", res.Conflicts[0])
	}
}

func TestMergeConvergentUpdate(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><p>base</p></doc>`,
		`<doc><p>same</p></doc>`,
		`<doc><p>same</p></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 || res.Converged != 1 {
		t.Fatalf("conflicts=%v converged=%d", res.Conflicts, res.Converged)
	}
}

func TestMergeUpdateDeleteConflict(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><gone>x</gone><stay/></doc>`,
		`<doc><stay/></doc>`,               // ours deletes
		`<doc><gone>y</gone><stay/></doc>`) // theirs updates inside
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != UpdateDelete {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	want, _ := dom.ParseString(`<doc><stay/></doc>`)
	if !dom.Equal(res.Doc, want) {
		t.Errorf("merged = %s", res.Doc)
	}
}

func TestMergeDeleteModifyConflict(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><sec><p>keep me</p></sec><other/></doc>`,
		`<doc><sec><p>edited</p></sec><other/></doc>`, // ours edits inside
		`<doc><other/></doc>`)                         // theirs deletes the section
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != DeleteModify {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	// Ours wins: the edited section survives.
	if got := xpathlite.MustCompile(`//sec/p`).Value(res.Doc); got != "edited" {
		t.Errorf("merged section = %q (%s)", got, res.Doc)
	}
}

func TestMergeConvergentDelete(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><gone/><stay/></doc>`,
		`<doc><stay/></doc>`,
		`<doc><stay/></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 || res.Converged != 1 {
		t.Fatalf("conflicts=%v converged=%d", res.Conflicts, res.Converged)
	}
}

func TestMergeMoveAndEdit(t *testing.T) {
	// Theirs moves a subtree; ours edits inside it. Both apply: the
	// move relocates the node (same XID), the edit already happened.
	base, ours, theirs := scenario(t,
		`<doc><src><box><v>1</v></box></src><dst/></doc>`,
		`<doc><src><box><v>2</v></box></src><dst/></doc>`,
		`<doc><src/><dst><box><v>1</v></box></dst></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	if got := xpathlite.MustCompile(`/doc/dst/box/v`).Value(res.Doc); got != "2" {
		t.Fatalf("moved box should carry ours' edit: %s", res.Doc)
	}
}

func TestMergeMoveMoveConflict(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><box/><a/><b/></doc>`,
		`<doc><a><box/></a><b/></doc>`,
		`<doc><a/><b><box/></b></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != MoveMove {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	// Ours wins: box under a.
	if got := len(xpathlite.MustCompile(`/doc/a/box`).Select(res.Doc)); got != 1 {
		t.Errorf("box location wrong: %s", res.Doc)
	}
}

func TestMergeInsertIntoDeletedParent(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><sec/><other/></doc>`,
		`<doc><other/></doc>`,                        // ours deletes <sec>
		`<doc><sec><new>x</new></sec><other/></doc>`) // theirs inserts under it
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != Orphaned {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	want, _ := dom.ParseString(`<doc><other/></doc>`)
	if !dom.Equal(res.Doc, want) {
		t.Errorf("merged = %s", res.Doc)
	}
}

func TestMergeMoveIntoDeletedParentRollsBack(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><dst/><box>payload</box></doc>`,
		`<doc><box>payload</box></doc>`,            // ours deletes <dst>
		`<doc><dst><box>payload</box></dst></doc>`) // theirs moves box into it
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != Orphaned {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	// The box must not be lost: rolled back to its original spot.
	if got := len(xpathlite.MustCompile(`//box`).Select(res.Doc)); got != 1 {
		t.Fatalf("box lost in merge: %s", res.Doc)
	}
}

func TestMergeAttributeConflicts(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><e a="1" b="2" c="3"/></doc>`,
		`<doc><e a="10" b="2" c="3" d="9"/></doc>`,
		`<doc><e a="11" b="20" c="3" d="9"/></doc>`)
	res := mergeOK(t, base, ours, theirs)
	// a: both changed differently -> conflict. b: theirs only -> applied.
	// d: both inserted same value -> converged.
	var kinds []ConflictKind
	for _, c := range res.Conflicts {
		kinds = append(kinds, c.Kind)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != AttrConflict {
		t.Fatalf("conflicts = %v (%v)", res.Conflicts, kinds)
	}
	e := xpathlite.MustCompile(`//e`).SelectFirst(res.Doc)
	if v, _ := e.Attribute("a"); v != "10" {
		t.Errorf("a = %q, ours should win", v)
	}
	if v, _ := e.Attribute("b"); v != "20" {
		t.Errorf("b = %q, theirs should apply", v)
	}
	if v, _ := e.Attribute("d"); v != "9" {
		t.Errorf("d = %q", v)
	}
	if res.Converged != 1 {
		t.Errorf("converged = %d", res.Converged)
	}
}

func TestMergeBothInsertDistinctXIDs(t *testing.T) {
	// Both sides insert: fresh XIDs collide between the deltas and must
	// be renumbered (assertUniqueXIDs in mergeOK does the checking).
	base, ours, theirs := scenario(t,
		`<doc><a/></doc>`,
		`<doc><a/><mine><x>1</x></mine></doc>`,
		`<doc><a/><yours><y>2</y></yours></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	if len(xpathlite.MustCompile(`//mine`).Select(res.Doc)) != 1 ||
		len(xpathlite.MustCompile(`//yours`).Select(res.Doc)) != 1 {
		t.Fatalf("merged = %s", res.Doc)
	}
}

func TestMergeTheirsMoveIntoTheirOwnInsert(t *testing.T) {
	base, ours, theirs := scenario(t,
		`<doc><box>payload</box></doc>`,
		`<doc><box>payload</box><oursextra/></doc>`,
		`<doc><wrap><box>payload</box></wrap></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	if len(xpathlite.MustCompile(`/doc/wrap/box`).Select(res.Doc)) != 1 {
		t.Fatalf("merged = %s", res.Doc)
	}
	if len(xpathlite.MustCompile(`/doc/oursextra`).Select(res.Doc)) != 1 {
		t.Fatalf("ours' insert lost: %s", res.Doc)
	}
}

func TestMergeErrors(t *testing.T) {
	base, _ := dom.ParseString(`<doc/>`)
	if _, err := ThreeWay(nil, &delta.Delta{}, &delta.Delta{}); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := ThreeWay(base.Root(), &delta.Delta{}, &delta.Delta{}); err == nil {
		t.Error("element base accepted")
	}
	bogus := &delta.Delta{Ops: []delta.Op{delta.Update{XID: 999, Old: "a", New: "b"}}}
	if _, err := ThreeWay(base, bogus, &delta.Delta{}); err == nil {
		t.Error("inapplicable ours accepted")
	}
	if _, err := ThreeWay(base, &delta.Delta{}, bogus); err == nil {
		t.Error("inapplicable theirs accepted")
	}
}

func TestMergeEmptyDeltas(t *testing.T) {
	base, ours, theirs := scenario(t, `<doc><a>1</a></doc>`, `<doc><a>1</a></doc>`, `<doc><a>1</a></doc>`)
	res := mergeOK(t, base, ours, theirs)
	if len(res.Conflicts) != 0 || res.Applied != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !dom.Equal(res.Doc, base) {
		t.Error("merge of empty deltas changed the document")
	}
}

func TestConflictKindStrings(t *testing.T) {
	kinds := []ConflictKind{UpdateUpdate, UpdateDelete, DeleteModify, MoveMove, MoveDelete, Orphaned, AttrConflict}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d name %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(ConflictKind(99).String(), "conflict(") {
		t.Error("unknown kind string")
	}
}
