package textdiff

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	s := "a\nb\nc\n"
	if got := Diff(s, s); got != "" {
		t.Errorf("diff of identical = %q", got)
	}
}

func TestDiffKnownShapes(t *testing.T) {
	cases := []struct {
		name, a, b string
		wantCmd    string
	}{
		{"change one line", "a\nb\nc\n", "a\nX\nc\n", "2c2"},
		{"delete one line", "a\nb\nc\n", "a\nc\n", "2d1"},
		{"append one line", "a\nc\n", "a\nb\nc\n", "1a2"},
		{"change range", "a\nb\nc\nd\n", "a\nX\nY\nd\n", "2,3c2,3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Diff(c.a, c.b)
			if !strings.HasPrefix(got, c.wantCmd+"\n") {
				t.Errorf("Diff output starts %q, want command %q\nfull:\n%s",
					strings.SplitN(got, "\n", 2)[0], c.wantCmd, got)
			}
		})
	}
}

func TestDiffMarkers(t *testing.T) {
	got := Diff("a\nold\nb\n", "a\nnew\nb\n")
	want := "2c2\n< old\n---\n> new\n"
	if got != want {
		t.Errorf("Diff = %q, want %q", got, want)
	}
}

func TestHunksPatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := []string{"alpha", "beta", "gamma", "delta", "eps"}
	randLines := func(n int) []string {
		out := make([]string, rng.Intn(n))
		for i := range out {
			out[i] = words[rng.Intn(len(words))]
		}
		return out
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randLines(25), randLines(25)
		got := Patch(a, Hunks(a, b), b)
		if strings.Join(got, "\n") != strings.Join(b, "\n") {
			t.Fatalf("patch(a, hunks) != b\na=%v\nb=%v\ngot=%v", a, b, got)
		}
	}
}

func TestLines(t *testing.T) {
	if got := Lines(""); got != nil {
		t.Errorf("Lines(\"\") = %v", got)
	}
	if got := Lines("a\nb\n"); len(got) != 2 {
		t.Errorf("Lines trailing newline = %v", got)
	}
	if got := Lines("a\nb"); len(got) != 2 {
		t.Errorf("Lines no trailing newline = %v", got)
	}
	// A single long line (the paper notes XML documents may contain
	// very long lines, hurting line diffs).
	if got := Lines("one single very long line"); len(got) != 1 {
		t.Errorf("single line = %v", got)
	}
}

func TestSizeWorstCase(t *testing.T) {
	// Completely different single-line documents: diff must carry both
	// sides, so its size exceeds both inputs (the paper's "worst case
	// size for the Unix Diff output is twice the size of the document").
	a := "<doc>" + strings.Repeat("x", 500) + "</doc>"
	b := "<doc>" + strings.Repeat("y", 500) + "</doc>"
	if got := Size(a, b); got < len(a)+len(b) {
		t.Errorf("worst-case size %d, want >= %d", got, len(a)+len(b))
	}
}

func TestRangeStr(t *testing.T) {
	if got := rangeStr(2, 3); got != "3" {
		t.Errorf("rangeStr(2,3) = %q", got)
	}
	if got := rangeStr(2, 5); got != "3,5" {
		t.Errorf("rangeStr(2,5) = %q", got)
	}
}
