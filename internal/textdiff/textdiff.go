// Package textdiff is a line-based difference tool equivalent to the
// classic Unix diff: a Myers O(ND) comparison over lines with ed-style
// output ("3,5c3,4" hunks). The paper's Figure 6 compares the size of
// XML deltas against the size of Unix diff output on the same document
// pair; this package makes that experiment hermetic.
package textdiff

import (
	"fmt"
	"strings"

	"xydiff/internal/lcs"
)

// Lines splits s into lines, stripping a sole trailing newline the way
// diff(1) treats text files.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Hunk is one contiguous block of changes.
type Hunk struct {
	// ALo/AHi and BLo/BHi are 0-based half-open line ranges in the old
	// and new texts. An empty A range is an append, an empty B range a
	// deletion, otherwise a change.
	ALo, AHi int
	BLo, BHi int
}

// Hunks groups a Myers edit script over lines into contiguous hunks.
func Hunks(a, b []string) []Hunk {
	edits := lcs.Myers(a, b)
	var hunks []Hunk
	var cur *Hunk
	ai, bi := 0, 0
	flush := func() {
		if cur != nil {
			hunks = append(hunks, *cur)
			cur = nil
		}
	}
	for _, e := range edits {
		switch e.Kind {
		case lcs.Keep:
			flush()
			ai++
			bi++
		case lcs.Delete:
			if cur == nil {
				cur = &Hunk{ALo: ai, AHi: ai, BLo: bi, BHi: bi}
			}
			ai++
			cur.AHi = ai
		case lcs.Insert:
			if cur == nil {
				cur = &Hunk{ALo: ai, AHi: ai, BLo: bi, BHi: bi}
			}
			bi++
			cur.BHi = bi
		}
	}
	flush()
	return hunks
}

// Diff returns the classic ed-style diff(1) output transforming a into
// b, with "<" lines from a and ">" lines from b. An empty string means
// the inputs are line-identical.
func Diff(a, b string) string {
	la, lb := Lines(a), Lines(b)
	hunks := Hunks(la, lb)
	if len(hunks) == 0 {
		return ""
	}
	var out strings.Builder
	for _, h := range hunks {
		switch {
		case h.ALo == h.AHi: // append
			fmt.Fprintf(&out, "%da%s\n", h.ALo, rangeStr(h.BLo, h.BHi))
		case h.BLo == h.BHi: // delete
			fmt.Fprintf(&out, "%sd%d\n", rangeStr(h.ALo, h.AHi), h.BLo)
		default: // change
			fmt.Fprintf(&out, "%sc%s\n", rangeStr(h.ALo, h.AHi), rangeStr(h.BLo, h.BHi))
		}
		for i := h.ALo; i < h.AHi; i++ {
			out.WriteString("< ")
			out.WriteString(la[i])
			out.WriteByte('\n')
		}
		if h.ALo != h.AHi && h.BLo != h.BHi {
			out.WriteString("---\n")
		}
		for i := h.BLo; i < h.BHi; i++ {
			out.WriteString("> ")
			out.WriteString(lb[i])
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// rangeStr renders a 0-based half-open range in diff(1)'s 1-based
// inclusive notation: [2,5) -> "3,5"; [2,3) -> "3".
func rangeStr(lo, hi int) string {
	if hi-lo <= 1 {
		return fmt.Sprintf("%d", lo+1)
	}
	return fmt.Sprintf("%d,%d", lo+1, hi)
}

// Size returns len(Diff(a, b)): the byte size of the Unix diff output,
// the denominator of the paper's Figure 6 ratio.
func Size(a, b string) int {
	return len(Diff(a, b))
}

// Patch applies a hunk list to the old lines and returns the new lines.
// It exists to verify, in tests, that the output is information-
// preserving in the same sense as diff | patch.
func Patch(a []string, hunks []Hunk, b []string) []string {
	var out []string
	ai := 0
	for _, h := range hunks {
		out = append(out, a[ai:h.ALo]...)
		out = append(out, b[h.BLo:h.BHi]...)
		ai = h.AHi
	}
	out = append(out, a[ai:]...)
	return out
}
