package diff

import (
	"container/heap"
	"math"

	"xydiff/internal/dom"
	"xydiff/internal/dtd"
)

// matcher holds the matching state between the old and new trees.
type matcher struct {
	old, new *tree
	opts     Options

	oldToNew []int // old post-order index -> new index, -1 unmatched
	newToOld []int

	// excluded marks old/new nodes that carry an ID attribute whose
	// value found no counterpart: the paper forbids matching them by
	// any other means.
	oldExcluded []bool
	newExcluded []bool

	// bySig indexes unconsumed old nodes by subtree signature; the
	// secondary index bySigParent finds, in O(1), a candidate whose
	// parent is a given old node (Section 5.3's answer to d -> 0).
	bySig       map[uint64][]int
	bySigParent map[sigParent][]int

	// dupSig marks signatures that occur more than once across the two
	// documents. A unique signature is strong evidence by itself (the
	// paper's "very unlikely that there is more than one large subtree
	// with the same signature"); a duplicated one is not — repeated
	// dates or prices would otherwise weld unrelated parents together
	// once the candidate bucket drains to one live entry.
	dupSig map[uint64]bool

	logN float64
}

type sigParent struct {
	sig    uint64
	parent int
}

func newMatcher(oldT, newT *tree, opts Options) *matcher {
	m := &matcher{
		old: oldT, new: newT, opts: opts,
		oldToNew:    make([]int, oldT.len()),
		newToOld:    make([]int, newT.len()),
		oldExcluded: make([]bool, oldT.len()),
		newExcluded: make([]bool, newT.len()),
		bySig:       make(map[uint64][]int, oldT.len()),
		bySigParent: make(map[sigParent][]int, oldT.len()),
		logN:        math.Log2(float64(oldT.len() + newT.len() + 2)),
	}
	for i := range m.oldToNew {
		m.oldToNew[i] = -1
	}
	for i := range m.newToOld {
		m.newToOld[i] = -1
	}
	for i := 0; i < oldT.len(); i++ {
		if i == oldT.root() {
			continue // the document node is matched structurally
		}
		m.bySig[oldT.sig[i]] = append(m.bySig[oldT.sig[i]], i)
		key := sigParent{oldT.sig[i], oldT.parent[i]}
		m.bySigParent[key] = append(m.bySigParent[key], i)
	}
	m.dupSig = make(map[uint64]bool, oldT.len())
	for sig, bucket := range m.bySig {
		if len(bucket) > 1 {
			m.dupSig[sig] = true
		}
	}
	seen := make(map[uint64]bool, newT.len())
	for i := 0; i < newT.len(); i++ {
		if i == newT.root() {
			continue
		}
		sig := newT.sig[i]
		if seen[sig] {
			m.dupSig[sig] = true
		}
		seen[sig] = true
	}
	return m
}

func (m *matcher) setMatch(oldIdx, newIdx int) {
	m.oldToNew[oldIdx] = newIdx
	m.newToOld[newIdx] = oldIdx
}

// compatible reports whether two nodes may be matched at all: same
// type, same label, neither already matched nor excluded.
func (m *matcher) compatible(oldIdx, newIdx int) bool {
	if m.oldToNew[oldIdx] >= 0 || m.newToOld[newIdx] >= 0 {
		return false
	}
	if m.oldExcluded[oldIdx] || m.newExcluded[newIdx] {
		return false
	}
	o, n := m.old.nodes[oldIdx], m.new.nodes[newIdx]
	return o.Type == n.Type && o.Name == n.Name
}

// depthBound is the paper's d = 1 + ceil(log2(n) * W/W0): how far up
// the ancestor chain a subtree of weight w may force decisions.
func (m *matcher) depthBound(w float64) int {
	if m.opts.MaxAncestorDepth > 0 {
		return m.opts.MaxAncestorDepth
	}
	w0 := m.old.totalWeight
	if m.new.totalWeight > w0 {
		w0 = m.new.totalWeight
	}
	return 1 + int(math.Ceil(m.logN*w/w0))
}

// ---------------------------------------------------------------------------
// Phase 1: ID attributes.

// phase1IDs matches nodes that are uniquely identified by an ID
// attribute. Nodes whose ID value appears in only one version are
// excluded from all further matching, per the paper.
func (m *matcher) phase1IDs() {
	if m.opts.DisableIDAttributes {
		return
	}
	ids := m.collectIDAttrs()
	if len(ids) == 0 {
		return
	}
	oldIDs := idIndex(m.old, ids)
	newIDs := idIndex(m.new, ids)
	for key, oi := range oldIDs {
		if oi < 0 {
			continue // duplicated ID value: ignore entirely
		}
		ni, ok := newIDs[key]
		if !ok || ni < 0 {
			m.oldExcluded[oi] = true
			continue
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
		}
	}
	for key, ni := range newIDs {
		if ni < 0 {
			continue
		}
		if oi, ok := oldIDs[key]; !ok || oi < 0 {
			m.newExcluded[ni] = true
		}
	}
	// "Then, a simple bottom-up and top-down propagation pass is
	// applied."
	m.propagateToParents()
	m.propagateToChildren()
}

// collectIDAttrs merges explicitly configured ID attributes with those
// declared in the old document's internal DTD subset (and the new
// one's, which normally names the same DTD).
func (m *matcher) collectIDAttrs() dtd.IDAttrs {
	ids := dtd.IDAttrs{}
	for _, doc := range []*dom.Node{m.old.doc, m.new.doc} {
		if doc.Doctype == "" {
			continue
		}
		// A malformed DTD only costs us Phase 1 information.
		if parsed, err := dtd.ParseDoctype(doc.Doctype); err == nil {
			for el, attr := range parsed {
				ids[el] = attr
			}
		}
	}
	for el, attr := range m.opts.IDAttrs {
		ids[el] = attr
	}
	return ids
}

type idKey struct {
	element string
	value   string
}

// idIndex maps (element, id-value) to the unique node carrying it;
// duplicate values map to -1.
func idIndex(t *tree, ids dtd.IDAttrs) map[idKey]int {
	out := make(map[idKey]int)
	for i, x := range t.nodes {
		if x.Type != dom.Element {
			continue
		}
		attr, ok := ids.Lookup(x.Name)
		if !ok {
			continue
		}
		v, ok := x.Attribute(attr)
		if !ok {
			continue
		}
		key := idKey{x.Name, v}
		if _, dup := out[key]; dup {
			out[key] = -1
		} else {
			out[key] = i
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Phase 3: heaviest-first subtree matching.

// queueItem orders new-document subtrees by weight; FIFO on ties, as
// the paper specifies.
type queueItem struct {
	idx    int
	weight float64
	seq    int
}

type maxQueue []queueItem

func (q maxQueue) Len() int { return len(q) }
func (q maxQueue) Less(i, j int) bool {
	if q[i].weight != q[j].weight {
		return q[i].weight > q[j].weight
	}
	return q[i].seq < q[j].seq
}
func (q maxQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *maxQueue) Push(x any)   { *q = append(*q, x.(queueItem)) }
func (q *maxQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// phase3BULD runs the core matching loop.
func (m *matcher) phase3BULD() {
	// Force-match the document nodes, then start from the top-level
	// items of the new version.
	m.setMatch(m.old.root(), m.new.root())
	q := make(maxQueue, 0, 64)
	seq := 0
	push := func(newIdx int) {
		q = append(q, queueItem{idx: newIdx, weight: m.new.weight[newIdx], seq: seq})
		seq++
	}
	for _, c := range m.new.doc.Children {
		push(m.new.index[c])
	}
	heap.Init(&q)
	pops := 0
	for q.Len() > 0 {
		// Large documents spend most of their diff here; honour
		// cancellation without paying a channel poll per pop.
		if pops++; pops&0x0fff == 0 && m.opts.canceled() {
			return
		}
		item := heap.Pop(&q).(queueItem)
		y := item.idx
		if m.newToOld[y] >= 0 {
			continue // matched meanwhile (subtree or propagation)
		}
		enqueueChildren := func() {
			if m.new.nodes[y].Type == dom.Element {
				for _, c := range m.new.nodes[y].Children {
					ci := m.new.index[c]
					if m.newToOld[ci] < 0 {
						heap.Push(&q, queueItem{idx: ci, weight: m.new.weight[ci], seq: seq})
						seq++
					}
				}
			}
		}
		if m.newExcluded[y] {
			enqueueChildren()
			continue
		}
		best := m.bestCandidate(y)
		if best < 0 {
			enqueueChildren()
			continue
		}
		m.matchSubtrees(best, y)
		m.matchAncestors(best, y)
		if m.opts.EagerDown {
			m.eagerDownFrom(y)
		}
	}
}

// bestCandidate returns the old node to match the new subtree y with,
// or -1. It implements the paper's candidate selection: unique
// candidates are accepted directly; among several, one whose ancestor
// at some level <= depthBound matches y's same-level ancestor wins,
// with sibling-position distance as a tie-break. The (sig, parent)
// secondary index resolves the common case in constant time.
func (m *matcher) bestCandidate(y int) int {
	sig := m.new.sig[y]
	cands := m.liveCandidates(sig)
	if len(cands) == 0 {
		return -1
	}
	// A globally unique signature identifies its subtree on its own.
	// A duplicated one needs contextual support below, even when only
	// one live candidate remains: "live uniqueness" is an artifact of
	// consumption order, not evidence.
	if len(cands) == 1 && !m.dupSig[sig] {
		if m.acceptable(cands[0], y) {
			return cands[0]
		}
		return -1
	}
	d := m.depthBound(m.new.weight[y])
	// Level 1 via the secondary index.
	if p := m.new.parent[y]; p >= 0 {
		if po := m.newToOld[p]; po >= 0 {
			if c := m.pickByParent(sig, po, y); c >= 0 {
				return c
			}
		}
	}
	// Higher levels: scan candidates, nearest ancestors first.
	cap := m.opts.maxCandidates()
	if len(cands) > cap {
		cands = cands[:cap]
	}
	for level := 2; level <= d; level++ {
		ya := m.new.ancestor(y, level)
		if ya < 0 {
			break
		}
		oa := m.newToOld[ya]
		if oa < 0 {
			continue
		}
		// Tie-break on the position of the ancestors just below the
		// supporting pair: for a <title> supported by the site node,
		// that is the page position — the node's own sibling index
		// (always 0 for a first child) carries no signal.
		yBelow := m.new.ancestor(y, level-1)
		bestIdx, bestDist := -1, 1<<30
		for _, c := range cands {
			if m.old.ancestor(c, level) != oa || !m.acceptable(c, y) {
				continue
			}
			cBelow := m.old.ancestor(c, level-1)
			dist := abs(m.old.childPos[cBelow] - m.new.childPos[yBelow])
			if dist < bestDist {
				bestIdx, bestDist = c, dist
			}
		}
		if bestIdx >= 0 {
			return bestIdx
		}
	}
	return -1
}

// liveCandidates filters the signature bucket down to still-unmatched
// nodes, compacting the bucket in place so repeated queries stay cheap.
func (m *matcher) liveCandidates(sig uint64) []int {
	bucket := m.bySig[sig]
	if len(bucket) == 0 {
		return nil
	}
	live := bucket[:0]
	for _, c := range bucket {
		if m.oldToNew[c] < 0 && !m.oldExcluded[c] {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		delete(m.bySig, sig)
		return nil
	}
	m.bySig[sig] = live
	return live
}

// pickByParent returns an acceptable candidate with the given old
// parent, preferring the one whose sibling position is closest to y's.
func (m *matcher) pickByParent(sig uint64, oldParent, y int) int {
	bucket := m.bySigParent[sigParent{sig, oldParent}]
	bestIdx, bestDist := -1, 1<<30
	for _, c := range bucket {
		if m.oldToNew[c] >= 0 || m.oldExcluded[c] || !m.acceptable(c, y) {
			continue
		}
		dist := abs(m.old.childPos[c] - m.new.childPos[y])
		if dist < bestDist {
			bestIdx, bestDist = c, dist
		}
	}
	return bestIdx
}

// acceptable verifies a signature-equal candidate structurally. The
// verification walk costs no more than the matchSubtrees walk that
// follows an acceptance, so the overall complexity is unchanged, and it
// makes 64-bit signature collisions harmless.
func (m *matcher) acceptable(oldIdx, newIdx int) bool {
	if m.oldToNew[oldIdx] >= 0 || m.newToOld[newIdx] >= 0 {
		return false
	}
	return dom.Equal(m.old.nodes[oldIdx], m.new.nodes[newIdx])
}

// matchSubtrees matches two identical subtrees node by node. Nodes
// already matched (e.g. by ID in Phase 1) or excluded are skipped; the
// parallel walk still descends so their unmatched descendants pair up.
func (m *matcher) matchSubtrees(oldIdx, newIdx int) {
	o, n := m.old.nodes[oldIdx], m.new.nodes[newIdx]
	if m.oldToNew[oldIdx] < 0 && m.newToOld[newIdx] < 0 &&
		!m.oldExcluded[oldIdx] && !m.newExcluded[newIdx] {
		m.setMatch(oldIdx, newIdx)
	}
	for i := range o.Children {
		m.matchSubtrees(m.old.index[o.Children[i]], m.new.index[n.Children[i]])
	}
}

// matchAncestors propagates an accepted match upward while labels agree
// (Phase 3's bottom-up propagation), at most depthBound(weight) levels.
func (m *matcher) matchAncestors(oldIdx, newIdx int) {
	limit := m.depthBound(m.new.weight[newIdx])
	o, n := m.old.parent[oldIdx], m.new.parent[newIdx]
	for level := 0; level < limit && o >= 0 && n >= 0; level++ {
		if !m.compatible(o, n) {
			return
		}
		m.setMatch(o, n)
		o, n = m.old.parent[o], m.new.parent[n]
	}
}

// eagerDownFrom immediately matches unique-label children below a fresh
// match (the EagerDown ablation; normally Phase 4 does this lazily).
func (m *matcher) eagerDownFrom(newIdx int) {
	oldIdx := m.newToOld[newIdx]
	if oldIdx < 0 {
		return
	}
	m.matchUniqueChildren(oldIdx, newIdx, true)
}

// ---------------------------------------------------------------------------
// Phase 4: structure-driven propagation.

// phase4Propagate runs the optimization passes: bottom-up "propagate to
// parent" followed by top-down "propagate to children".
func (m *matcher) phase4Propagate() {
	for pass := 0; pass < m.opts.passes(); pass++ {
		if m.opts.canceled() {
			return
		}
		m.propagateToParents()
		m.propagateToChildren()
	}
}

// propagateToParents scans the new document in post-order; an unmatched
// element whose children are matched adopts the parent of the heaviest
// group of its children's counterparts, when labels agree.
func (m *matcher) propagateToParents() {
	weightByParent := make(map[int]float64)
	for y := 0; y < m.new.len(); y++ {
		if m.newToOld[y] >= 0 || m.newExcluded[y] {
			continue
		}
		node := m.new.nodes[y]
		if node.Type != dom.Element || len(node.Children) == 0 {
			continue
		}
		clear(weightByParent)
		for _, c := range node.Children {
			ci := m.new.index[c]
			oi := m.newToOld[ci]
			if oi < 0 {
				continue
			}
			if po := m.old.parent[oi]; po >= 0 {
				weightByParent[po] += m.old.weight[oi]
			}
		}
		bestParent, bestWeight := -1, 0.0
		for po, w := range weightByParent {
			if w > bestWeight || (w == bestWeight && po > bestParent) {
				bestParent, bestWeight = po, w
			}
		}
		if bestParent >= 0 && m.compatible(bestParent, y) {
			m.setMatch(bestParent, y)
		}
	}
}

// propagateToChildren scans matched pairs in document order and matches
// children that are the unique unmatched child with a given label on
// both sides.
func (m *matcher) propagateToChildren() {
	// Pre-order over the new tree: parents first, so fresh matches
	// cascade downward within the single pass.
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		y := m.new.index[n]
		if oi := m.newToOld[y]; oi >= 0 {
			m.matchUniqueChildren(oi, y, false)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.new.doc)
}

// childKey buckets children for unique-label matching: elements by
// label, other node types by type.
type childKey struct {
	typ  dom.NodeType
	name string
}

// matchUniqueChildren matches children of a matched pair when each side
// has exactly one unmatched child with a given key. With recurse, it
// descends into every fresh match (EagerDown mode).
func (m *matcher) matchUniqueChildren(oldIdx, newIdx int, recurse bool) {
	o, n := m.old.nodes[oldIdx], m.new.nodes[newIdx]
	if len(o.Children) == 0 || len(n.Children) == 0 {
		return
	}
	oldByKey := make(map[childKey]int, len(o.Children))
	for _, c := range o.Children {
		ci := m.old.index[c]
		if m.oldToNew[ci] >= 0 || m.oldExcluded[ci] {
			continue
		}
		k := keyOf(c)
		if _, dup := oldByKey[k]; dup {
			oldByKey[k] = -1
		} else {
			oldByKey[k] = ci
		}
	}
	newByKey := make(map[childKey]int, len(n.Children))
	for _, c := range n.Children {
		ci := m.new.index[c]
		if m.newToOld[ci] >= 0 || m.newExcluded[ci] {
			continue
		}
		k := keyOf(c)
		if _, dup := newByKey[k]; dup {
			newByKey[k] = -1
		} else {
			newByKey[k] = ci
		}
	}
	for k, oi := range oldByKey {
		ni, ok := newByKey[k]
		if !ok || oi < 0 || ni < 0 {
			continue
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
			if recurse {
				m.matchUniqueChildren(oi, ni, true)
			}
		}
	}
}

func keyOf(n *dom.Node) childKey {
	if n.Type == dom.Element || n.Type == dom.ProcInst {
		return childKey{n.Type, n.Name}
	}
	return childKey{n.Type, ""}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
