package diff

import (
	"container/heap"
	"math"

	"xydiff/internal/dom"
	"xydiff/internal/dtd"
	"xydiff/internal/lcs"
)

// sigShards is the fixed fan-out of the signature indexes. Sharding by
// low signature bits lets the index build run on several goroutines
// while keeping every bucket's content — and therefore candidate
// order — independent of the worker count. The constant is a power of
// two and deliberately NOT tied to Options.Workers: the shard a
// signature lands in must never change, only who builds it.
const sigShards = 8

func sigShard(sig uint64) int { return int(sig & (sigShards - 1)) }

// matcher holds the matching state between the old and new trees.
type matcher struct {
	old, new *tree
	opts     Options

	oldToNew []int // old post-order index -> new index, -1 unmatched
	newToOld []int

	// excluded marks old/new nodes that carry an ID attribute whose
	// value found no counterpart: the paper forbids matching them by
	// any other means.
	oldExcluded []bool
	newExcluded []bool

	// bySig indexes unconsumed old nodes by subtree signature; the
	// secondary index bySigParent finds, in O(1), a candidate whose
	// parent is a given old node (Section 5.3's answer to d -> 0).
	bySig       [sigShards]map[uint64][]int32
	bySigParent [sigShards]map[sigParent][]int32

	// dupSig marks signatures that occur more than once across the two
	// documents. A unique signature is strong evidence by itself (the
	// paper's "very unlikely that there is more than one large subtree
	// with the same signature"); a duplicated one is not — repeated
	// dates or prices would otherwise weld unrelated parents together
	// once the candidate bucket drains to one live entry.
	dupSig [sigShards]map[uint64]bool

	// seen is shard-build scratch (new-document signature occurrence).
	seen [sigShards]map[uint64]bool

	// q is the Phase 3 priority queue, retained across pooled reuses.
	q maxQueue

	// ukOld/ukNew are matchUniqueChildren scratch (non-recursive path
	// only; the recursive EagerDown ablation allocates instead, since
	// a shared map cannot survive reentrancy).
	ukOld, ukNew map[childKey]int

	// wbp is propagateToParents scratch.
	wbp map[int]float64

	// liItems/liKept/liStay are buildDelta's intra-parent move scratch,
	// reused across all matched parent pairs of one diff.
	liItems []lcs.Item
	liKept  []int
	liStay  map[int]bool

	logN float64
}

type sigParent struct {
	sig    uint64
	parent int32
}

// reset prepares a (possibly pooled) matcher for one diff, building the
// signature indexes with at most workers goroutines.
func (m *matcher) reset(oldT, newT *tree, opts Options, workers int) {
	m.old, m.new, m.opts = oldT, newT, opts
	m.logN = math.Log2(float64(oldT.len() + newT.len() + 2))

	m.oldToNew = growSlice(m.oldToNew, oldT.len())
	m.newToOld = growSlice(m.newToOld, newT.len())
	for i := range m.oldToNew {
		m.oldToNew[i] = -1
	}
	for i := range m.newToOld {
		m.newToOld[i] = -1
	}
	m.oldExcluded = growSlice(m.oldExcluded, oldT.len())
	clear(m.oldExcluded)
	m.newExcluded = growSlice(m.newExcluded, newT.len())
	clear(m.newExcluded)

	for s := 0; s < sigShards; s++ {
		if m.bySig[s] == nil {
			m.bySig[s] = make(map[uint64][]int32, oldT.len()/sigShards+1)
			m.bySigParent[s] = make(map[sigParent][]int32, oldT.len()/sigShards+1)
			m.dupSig[s] = make(map[uint64]bool)
			m.seen[s] = make(map[uint64]bool)
		} else {
			clear(m.bySig[s])
			clear(m.bySigParent[s])
			clear(m.dupSig[s])
			clear(m.seen[s])
		}
	}
	if m.ukOld == nil {
		m.ukOld = make(map[childKey]int)
		m.ukNew = make(map[childKey]int)
		m.wbp = make(map[int]float64)
		m.liStay = make(map[int]bool)
	}

	// Each shard task owns shard s of every index, scanning both trees
	// once. Buckets fill in ascending post-order regardless of how the
	// shards are spread over goroutines, so the candidate order — and
	// the delta — is identical for every worker count.
	runParallel(workers, sigShards, func(s int) {
		bySig, byPar := m.bySig[s], m.bySigParent[s]
		oldRoot := oldT.root()
		for i := 0; i < oldT.len(); i++ {
			if i == oldRoot {
				continue // the document node is matched structurally
			}
			sg := oldT.sig[i]
			if sigShard(sg) != s {
				continue
			}
			bySig[sg] = append(bySig[sg], int32(i))
			key := sigParent{sg, oldT.parent[i]}
			byPar[key] = append(byPar[key], int32(i))
		}
		dup := m.dupSig[s]
		for sg, bucket := range bySig {
			if len(bucket) > 1 {
				dup[sg] = true
			}
		}
		seen := m.seen[s]
		newRoot := newT.root()
		for i := 0; i < newT.len(); i++ {
			if i == newRoot {
				continue
			}
			sg := newT.sig[i]
			if sigShard(sg) != s {
				continue
			}
			if seen[sg] {
				dup[sg] = true
			}
			seen[sg] = true
		}
	})
}

func (m *matcher) setMatch(oldIdx, newIdx int) {
	m.oldToNew[oldIdx] = newIdx
	m.newToOld[newIdx] = oldIdx
}

// compatible reports whether two nodes may be matched at all: same
// type, same label, neither already matched nor excluded.
func (m *matcher) compatible(oldIdx, newIdx int) bool {
	if m.oldToNew[oldIdx] >= 0 || m.newToOld[newIdx] >= 0 {
		return false
	}
	if m.oldExcluded[oldIdx] || m.newExcluded[newIdx] {
		return false
	}
	o, n := m.old.nodes[oldIdx], m.new.nodes[newIdx]
	return o.Type == n.Type && o.Name == n.Name
}

// depthBound is the paper's d = 1 + ceil(log2(n) * W/W0): how far up
// the ancestor chain a subtree of weight w may force decisions.
func (m *matcher) depthBound(w float64) int {
	if m.opts.MaxAncestorDepth > 0 {
		return m.opts.MaxAncestorDepth
	}
	w0 := m.old.totalWeight
	if m.new.totalWeight > w0 {
		w0 = m.new.totalWeight
	}
	return 1 + int(math.Ceil(m.logN*w/w0))
}

// ---------------------------------------------------------------------------
// Phase 1: ID attributes.

// phase1IDs matches nodes that are uniquely identified by an ID
// attribute. Nodes whose ID value appears in only one version are
// excluded from all further matching, per the paper.
func (m *matcher) phase1IDs() {
	if m.opts.DisableIDAttributes {
		return
	}
	ids := m.collectIDAttrs()
	if len(ids) == 0 {
		return
	}
	var oldIDs, newIDs map[idKey]int
	trees := [2]*tree{m.old, m.new}
	out := [2]*map[idKey]int{&oldIDs, &newIDs}
	runParallel(m.opts.workers(), 2, func(k int) {
		*out[k] = idIndex(trees[k], ids)
	})
	for key, oi := range oldIDs {
		if oi < 0 {
			continue // duplicated ID value: ignore entirely
		}
		ni, ok := newIDs[key]
		if !ok || ni < 0 {
			m.oldExcluded[oi] = true
			continue
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
		}
	}
	for key, ni := range newIDs {
		if ni < 0 {
			continue
		}
		if oi, ok := oldIDs[key]; !ok || oi < 0 {
			m.newExcluded[ni] = true
		}
	}
	// "Then, a simple bottom-up and top-down propagation pass is
	// applied."
	m.propagateToParents()
	m.propagateToChildren()
}

// collectIDAttrs merges explicitly configured ID attributes with those
// declared in the old document's internal DTD subset (and the new
// one's, which normally names the same DTD).
func (m *matcher) collectIDAttrs() dtd.IDAttrs {
	ids := dtd.IDAttrs{}
	for _, doc := range []*dom.Node{m.old.doc, m.new.doc} {
		if doc.Doctype == "" {
			continue
		}
		// A malformed DTD only costs us Phase 1 information.
		if parsed, err := dtd.ParseDoctype(doc.Doctype); err == nil {
			for el, attr := range parsed {
				ids[el] = attr
			}
		}
	}
	for el, attr := range m.opts.IDAttrs {
		ids[el] = attr
	}
	return ids
}

type idKey struct {
	element string
	value   string
}

// idIndex maps (element, id-value) to the unique node carrying it;
// duplicate values map to -1.
func idIndex(t *tree, ids dtd.IDAttrs) map[idKey]int {
	out := make(map[idKey]int)
	for i, x := range t.nodes {
		if x.Type != dom.Element {
			continue
		}
		attr, ok := ids.Lookup(x.Name)
		if !ok {
			continue
		}
		v, ok := x.Attribute(attr)
		if !ok {
			continue
		}
		key := idKey{x.Name, v}
		if _, dup := out[key]; dup {
			out[key] = -1
		} else {
			out[key] = i
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Phase 3: heaviest-first subtree matching.

// queueItem orders new-document subtrees by weight; FIFO on ties, as
// the paper specifies.
type queueItem struct {
	idx    int
	weight float64
	seq    int
}

type maxQueue []queueItem

func (q maxQueue) Len() int { return len(q) }
func (q maxQueue) Less(i, j int) bool {
	if q[i].weight != q[j].weight {
		return q[i].weight > q[j].weight
	}
	return q[i].seq < q[j].seq
}
func (q maxQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *maxQueue) Push(x any)   { *q = append(*q, x.(queueItem)) }
func (q *maxQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// phase3BULD runs the core matching loop.
func (m *matcher) phase3BULD() {
	// Force-match the document nodes, then start from the top-level
	// items of the new version.
	m.setMatch(m.old.root(), m.new.root())
	q := m.q[:0]
	seq := 0
	root := m.new.root()
	for pos := range m.new.doc.Children {
		ci := m.new.child(root, pos)
		q = append(q, queueItem{idx: ci, weight: m.new.weight[ci], seq: seq})
		seq++
	}
	heap.Init(&q)
	pops := 0
	for q.Len() > 0 {
		// Large documents spend most of their diff here; honour
		// cancellation without paying a channel poll per pop.
		if pops++; pops&0x0fff == 0 && m.opts.canceled() {
			m.q = q
			return
		}
		item := heap.Pop(&q).(queueItem)
		y := item.idx
		if m.newToOld[y] >= 0 {
			continue // matched meanwhile (subtree or propagation)
		}
		enqueueChildren := func() {
			if m.new.nodes[y].Type == dom.Element {
				for pos := range m.new.nodes[y].Children {
					ci := m.new.child(y, pos)
					if m.newToOld[ci] < 0 {
						heap.Push(&q, queueItem{idx: ci, weight: m.new.weight[ci], seq: seq})
						seq++
					}
				}
			}
		}
		if m.newExcluded[y] {
			enqueueChildren()
			continue
		}
		best := m.bestCandidate(y)
		if best < 0 {
			enqueueChildren()
			continue
		}
		m.matchSubtrees(best, y)
		m.matchAncestors(best, y)
		if m.opts.EagerDown {
			m.eagerDownFrom(y)
		}
	}
	m.q = q // hand the grown backing array back for pooled reuse
}

// bestCandidate returns the old node to match the new subtree y with,
// or -1. It implements the paper's candidate selection: unique
// candidates are accepted directly; among several, one whose ancestor
// at some level <= depthBound matches y's same-level ancestor wins,
// with sibling-position distance as a tie-break. The (sig, parent)
// secondary index resolves the common case in constant time.
func (m *matcher) bestCandidate(y int) int {
	sig := m.new.sig[y]
	cands := m.liveCandidates(sig)
	if len(cands) == 0 {
		return -1
	}
	// A globally unique signature identifies its subtree on its own.
	// A duplicated one needs contextual support below, even when only
	// one live candidate remains: "live uniqueness" is an artifact of
	// consumption order, not evidence.
	if len(cands) == 1 && !m.dupSig[sigShard(sig)][sig] {
		if m.acceptable(int(cands[0]), y) {
			return int(cands[0])
		}
		return -1
	}
	d := m.depthBound(m.new.weight[y])
	// Level 1 via the secondary index.
	if p := int(m.new.parent[y]); p >= 0 {
		if po := m.newToOld[p]; po >= 0 {
			if c := m.pickByParent(sig, po, y); c >= 0 {
				return c
			}
		}
	}
	// Higher levels: scan candidates, nearest ancestors first.
	cap := m.opts.maxCandidates()
	if len(cands) > cap {
		cands = cands[:cap]
	}
	for level := 2; level <= d; level++ {
		ya := m.new.ancestor(y, level)
		if ya < 0 {
			break
		}
		oa := m.newToOld[ya]
		if oa < 0 {
			continue
		}
		// Tie-break on the position of the ancestors just below the
		// supporting pair: for a <title> supported by the site node,
		// that is the page position — the node's own sibling index
		// (always 0 for a first child) carries no signal.
		yBelow := m.new.ancestor(y, level-1)
		bestIdx, bestDist := -1, 1<<30
		for _, c32 := range cands {
			c := int(c32)
			if m.old.ancestor(c, level) != oa || !m.acceptable(c, y) {
				continue
			}
			cBelow := m.old.ancestor(c, level-1)
			dist := abs(int(m.old.childPos[cBelow]) - int(m.new.childPos[yBelow]))
			if dist < bestDist {
				bestIdx, bestDist = c, dist
			}
		}
		if bestIdx >= 0 {
			return bestIdx
		}
	}
	return -1
}

// liveCandidates filters the signature bucket down to still-unmatched
// nodes, compacting the bucket in place so repeated queries stay cheap.
func (m *matcher) liveCandidates(sig uint64) []int32 {
	shard := m.bySig[sigShard(sig)]
	bucket := shard[sig]
	if len(bucket) == 0 {
		return nil
	}
	live := bucket[:0]
	for _, c := range bucket {
		if m.oldToNew[c] < 0 && !m.oldExcluded[c] {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		delete(shard, sig)
		return nil
	}
	shard[sig] = live
	return live
}

// pickByParent returns an acceptable candidate with the given old
// parent, preferring the one whose sibling position is closest to y's.
func (m *matcher) pickByParent(sig uint64, oldParent, y int) int {
	bucket := m.bySigParent[sigShard(sig)][sigParent{sig, int32(oldParent)}]
	bestIdx, bestDist := -1, 1<<30
	for _, c32 := range bucket {
		c := int(c32)
		if m.oldToNew[c] >= 0 || m.oldExcluded[c] || !m.acceptable(c, y) {
			continue
		}
		dist := abs(int(m.old.childPos[c]) - int(m.new.childPos[y]))
		if dist < bestDist {
			bestIdx, bestDist = c, dist
		}
	}
	return bestIdx
}

// acceptable verifies a signature-equal candidate structurally. The
// verification walk costs no more than the matchSubtrees walk that
// follows an acceptance, so the overall complexity is unchanged, and it
// makes 64-bit signature collisions harmless.
func (m *matcher) acceptable(oldIdx, newIdx int) bool {
	if m.oldToNew[oldIdx] >= 0 || m.newToOld[newIdx] >= 0 {
		return false
	}
	return dom.Equal(m.old.nodes[oldIdx], m.new.nodes[newIdx])
}

// matchSubtrees matches two identical subtrees node by node. Nodes
// already matched (e.g. by ID in Phase 1) or excluded are skipped; the
// parallel walk still descends so their unmatched descendants pair up.
func (m *matcher) matchSubtrees(oldIdx, newIdx int) {
	if m.oldToNew[oldIdx] < 0 && m.newToOld[newIdx] < 0 &&
		!m.oldExcluded[oldIdx] && !m.newExcluded[newIdx] {
		m.setMatch(oldIdx, newIdx)
	}
	for pos := range m.old.nodes[oldIdx].Children {
		m.matchSubtrees(m.old.child(oldIdx, pos), m.new.child(newIdx, pos))
	}
}

// matchAncestors propagates an accepted match upward while labels agree
// (Phase 3's bottom-up propagation), at most depthBound(weight) levels.
func (m *matcher) matchAncestors(oldIdx, newIdx int) {
	limit := m.depthBound(m.new.weight[newIdx])
	o, n := int(m.old.parent[oldIdx]), int(m.new.parent[newIdx])
	for level := 0; level < limit && o >= 0 && n >= 0; level++ {
		if !m.compatible(o, n) {
			return
		}
		m.setMatch(o, n)
		o, n = int(m.old.parent[o]), int(m.new.parent[n])
	}
}

// eagerDownFrom immediately matches unique-label children below a fresh
// match (the EagerDown ablation; normally Phase 4 does this lazily).
func (m *matcher) eagerDownFrom(newIdx int) {
	oldIdx := m.newToOld[newIdx]
	if oldIdx < 0 {
		return
	}
	m.matchUniqueChildren(oldIdx, newIdx, true)
}

// ---------------------------------------------------------------------------
// Phase 4: structure-driven propagation.

// phase4Propagate runs the optimization passes: bottom-up "propagate to
// parent" followed by top-down "propagate to children".
func (m *matcher) phase4Propagate() {
	for pass := 0; pass < m.opts.passes(); pass++ {
		if m.opts.canceled() {
			return
		}
		m.propagateToParents()
		m.propagateToChildren()
	}
}

// propagateToParents scans the new document in post-order; an unmatched
// element whose children are matched adopts the parent of the heaviest
// group of its children's counterparts, when labels agree.
func (m *matcher) propagateToParents() {
	weightByParent := m.wbp
	for y := 0; y < m.new.len(); y++ {
		if m.newToOld[y] >= 0 || m.newExcluded[y] {
			continue
		}
		node := m.new.nodes[y]
		if node.Type != dom.Element || len(node.Children) == 0 {
			continue
		}
		clear(weightByParent)
		for pos := range node.Children {
			ci := m.new.child(y, pos)
			oi := m.newToOld[ci]
			if oi < 0 {
				continue
			}
			if po := int(m.old.parent[oi]); po >= 0 {
				weightByParent[po] += m.old.weight[oi]
			}
		}
		bestParent, bestWeight := -1, 0.0
		for po, w := range weightByParent {
			if w > bestWeight || (w == bestWeight && po > bestParent) {
				bestParent, bestWeight = po, w
			}
		}
		if bestParent >= 0 && m.compatible(bestParent, y) {
			m.setMatch(bestParent, y)
		}
	}
}

// propagateToChildren scans matched pairs in document order and matches
// children that are the unique unmatched child with a given label on
// both sides.
func (m *matcher) propagateToChildren() {
	// Pre-order over the new tree: parents first, so fresh matches
	// cascade downward within the single pass.
	m.new.walkPre(m.new.root(), func(y int) bool {
		if oi := m.newToOld[y]; oi >= 0 {
			m.matchUniqueChildren(oi, y, false)
		}
		return true
	})
}

// childKey buckets children for unique-label matching: elements by
// label, other node types by type.
type childKey struct {
	typ  dom.NodeType
	name string
}

// matchUniqueChildren matches children of a matched pair when each side
// has exactly one unmatched child with a given key. With recurse, it
// descends into every fresh match (EagerDown mode).
func (m *matcher) matchUniqueChildren(oldIdx, newIdx int, recurse bool) {
	o, n := m.old.nodes[oldIdx], m.new.nodes[newIdx]
	if len(o.Children) == 0 || len(n.Children) == 0 {
		return
	}
	oldByKey, newByKey := m.ukOld, m.ukNew
	if recurse {
		// Reentrant path: fresh maps, the shared scratch is in use by
		// the enclosing frame.
		oldByKey = make(map[childKey]int, len(o.Children))
		newByKey = make(map[childKey]int, len(n.Children))
	} else {
		clear(oldByKey)
		clear(newByKey)
	}
	for pos, c := range o.Children {
		ci := m.old.child(oldIdx, pos)
		if m.oldToNew[ci] >= 0 || m.oldExcluded[ci] {
			continue
		}
		k := keyOf(c)
		if _, dup := oldByKey[k]; dup {
			oldByKey[k] = -1
		} else {
			oldByKey[k] = ci
		}
	}
	for pos, c := range n.Children {
		ci := m.new.child(newIdx, pos)
		if m.newToOld[ci] >= 0 || m.newExcluded[ci] {
			continue
		}
		k := keyOf(c)
		if _, dup := newByKey[k]; dup {
			newByKey[k] = -1
		} else {
			newByKey[k] = ci
		}
	}
	for k, oi := range oldByKey {
		ni, ok := newByKey[k]
		if !ok || oi < 0 || ni < 0 {
			continue
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
			if recurse {
				m.matchUniqueChildren(oi, ni, true)
			}
		}
	}
}

func keyOf(n *dom.Node) childKey {
	if n.Type == dom.Element || n.Type == dom.ProcInst {
		return childKey{n.Type, n.Name}
	}
	return childKey{n.Type, ""}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
