package diff

import "sync"

// The server's worker pool runs diffs back to back; the annotation
// arrays and matcher maps dominated its allocation profile. Both are
// pooled: a diff draws trees and a matcher at the start and releases
// them before returning, so steady-state diffing reuses warm memory
// instead of churning the GC. Pooled objects hold no pointers into the
// documents after release.
var treePool = sync.Pool{New: func() any { return new(tree) }}

var matcherPool = sync.Pool{New: func() any { return new(matcher) }}

func treeFromPool() *tree {
	return treePool.Get().(*tree)
}

// release returns the tree's arrays to the pool. The nodes slice is
// cleared so the pool does not pin an entire released document in
// memory; the numeric arrays keep their capacity warm.
func (t *tree) release() {
	if t == nil {
		return
	}
	t.doc = nil
	clear(t.nodes)
	t.nodes = t.nodes[:0]
	treePool.Put(t)
}

func matcherFromPool(oldT, newT *tree, opts Options, workers int) *matcher {
	m := matcherPool.Get().(*matcher)
	m.reset(oldT, newT, opts, workers)
	return m
}

// release detaches the matcher from the documents and returns it to the
// pool. Map scratch is cleared on the next reset, not here: a released
// matcher holds only indexes and signatures, no document pointers —
// except the queue and unique-child scratch, which are emptied now.
func (m *matcher) release() {
	if m == nil {
		return
	}
	m.old, m.new = nil, nil
	m.q = m.q[:0]
	clear(m.ukOld)
	clear(m.ukNew)
	matcherPool.Put(m)
}
