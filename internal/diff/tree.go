package diff

import (
	"math"

	"xydiff/internal/dom"
)

// tree annotates one document with the dense per-node arrays the BULD
// phases need: post-order numbering, parent/child indexes, subtree
// weights and signatures. Keeping these out of dom.Node keeps the hot
// loops cache-friendly and the DOM clean.
//
// Node identity is the post-order index. The former node→index map is
// gone: child lookups go through the flattened kids/kidStart arrays,
// which cost one slice read instead of a map probe and let the
// annotation build fan out over subtrees without a serialized map
// insert per node.
type tree struct {
	doc   *dom.Node
	nodes []*dom.Node // post-order

	parent   []int32   // post-order index of parent (-1 for document)
	childPos []int32   // position among parent's children
	kidStart []int32   // offset of node i's children block in kids
	kids     []int32   // flattened child indexes, one block per node
	weight   []float64 // paper's weights: text 1+log2(len), element 1+sum
	sig      []uint64  // subtree content signature

	totalWeight float64
}

// newTree annotates doc using at most workers goroutines. done, when
// non-nil, aborts the build early (the caller notices through
// Options.canceled and discards the partial tree).
func newTree(doc *dom.Node, workers int, done <-chan struct{}) *tree {
	t := treeFromPool()
	t.doc = doc
	if workers > 1 && len(doc.Children) > 0 {
		if t.buildParallel(workers, done) {
			return t
		}
		// Decomposition found no parallelism (tiny or degenerate
		// document): fall through to the sequential path.
	}
	n := doc.Size()
	t.grow(n)
	b := builder{t: t, done: done}
	b.build(doc, 0, 0, 0)
	t.parent[n-1] = -1
	t.finish()
	return t
}

// grow sizes the arrays for n nodes, reusing pooled capacity. Every
// element is written during the build, so no zeroing is needed.
func (t *tree) grow(n int) {
	t.nodes = growSlice(t.nodes, n)
	t.parent = growSlice(t.parent, n)
	t.childPos = growSlice(t.childPos, n)
	t.kidStart = growSlice(t.kidStart, n)
	t.weight = growSlice(t.weight, n)
	t.sig = growSlice(t.sig, n)
	if n > 0 {
		t.kids = growSlice(t.kids, n-1)
	} else {
		t.kids = t.kids[:0]
	}
}

func (t *tree) finish() {
	t.totalWeight = t.weight[t.root()]
}

func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (t *tree) len() int { return len(t.nodes) }

// root returns the post-order index of the document node (always last).
func (t *tree) root() int { return len(t.nodes) - 1 }

// child returns the post-order index of the pos-th child of node i.
func (t *tree) child(i, pos int) int {
	return int(t.kids[int(t.kidStart[i])+pos])
}

// ancestor returns the index of the level-th ancestor of i, or -1.
func (t *tree) ancestor(i, level int) int {
	for ; level > 0 && i >= 0; level-- {
		i = int(t.parent[i])
	}
	return i
}

// walkPre visits the subtree rooted at index i in document order. If v
// returns false for a node, its children are skipped.
func (t *tree) walkPre(i int, v func(i int) bool) {
	if !v(i) {
		return
	}
	base := int(t.kidStart[i])
	for j := range t.nodes[i].Children {
		t.walkPre(int(t.kids[base+j]), v)
	}
}

// builder fills one contiguous region of the annotation arrays. The
// sequential path uses a single builder over the whole document; the
// parallel path runs one per decomposition block, each writing a
// disjoint index range, so no synchronization is needed beyond the
// final join.
type builder struct {
	t     *tree
	attrs []dom.Attr // scratch for attribute sorting
	done  <-chan struct{}
	steps int
	stop  bool // done fired: unwind, the partial tree is discarded
}

// build fills the arrays for the subtree rooted at x, assigning
// post-order indexes from idx and kids-block offsets from off, and
// returns x's own index and the next free (idx, off). The parent entry
// of x itself is the caller's responsibility.
func (b *builder) build(x *dom.Node, idx, off, pos int32) (int32, int32, int32) {
	if b.stop {
		// Cancellation unwind: the returned indexes stay in bounds so
		// enclosing frames write only into allocated (discarded) space.
		return idx, idx, off
	}
	t := b.t
	r := off
	off += int32(len(x.Children))
	for j, c := range x.Children {
		var ci int32
		ci, idx, off = b.build(c, idx, off, int32(j))
		t.kids[r+int32(j)] = ci
	}
	self := idx
	idx++
	t.nodes[self] = x
	t.childPos[self] = pos
	t.kidStart[self] = r

	// Annotation: streaming byte hash of the node's own content, then
	// the children's signatures in order (so the signature represents
	// the entire subtree), and the Section 5.2 weights.
	h := dom.NewHash64()
	b.attrs = h.HashNodeScratch(x, b.attrs)
	switch x.Type {
	case dom.Element, dom.Document:
		w := 1.0
		for j := range x.Children {
			ci := t.kids[r+int32(j)]
			t.parent[ci] = self
			h.MixUint64(t.sig[ci])
			w += t.weight[ci]
		}
		t.weight[self] = w
	default: // Text, Comment, ProcInst
		t.weight[self] = 1 + math.Log2(float64(1+len(x.Value)))
	}
	t.sig[self] = h.Sum()

	if b.steps++; b.steps&0x03ff == 0 && b.canceled() {
		b.stop = true
	}
	return self, idx, off
}

func (b *builder) canceled() bool {
	if b.done == nil {
		return false
	}
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}
