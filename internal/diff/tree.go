package diff

import (
	"math"

	"xydiff/internal/dom"
)

// tree annotates one document with the dense per-node arrays the BULD
// phases need: post-order numbering, parent/child indexes, subtree
// weights and signatures. Keeping these out of dom.Node keeps the hot
// loops cache-friendly and the DOM clean.
type tree struct {
	doc   *dom.Node
	nodes []*dom.Node       // post-order
	index map[*dom.Node]int // node -> post-order position

	parent   []int     // post-order index of parent (-1 for document)
	childPos []int     // position among parent's children
	weight   []float64 // paper's weights: text 1+log2(len), element 1+sum
	sig      []uint64  // subtree content signature

	totalWeight float64
}

func newTree(doc *dom.Node) *tree {
	n := doc.Size()
	t := &tree{
		doc:      doc,
		nodes:    make([]*dom.Node, 0, n),
		index:    make(map[*dom.Node]int, n),
		parent:   make([]int, 0, n),
		childPos: make([]int, 0, n),
		weight:   make([]float64, n),
		sig:      make([]uint64, n),
	}
	dom.WalkPost(doc, func(x *dom.Node) bool {
		t.index[x] = len(t.nodes)
		t.nodes = append(t.nodes, x)
		t.parent = append(t.parent, -1) // fixed up below
		t.childPos = append(t.childPos, 0)
		return true
	})
	for i, x := range t.nodes {
		for pos, c := range x.Children {
			ci := t.index[c]
			t.parent[ci] = i
			t.childPos[ci] = pos
		}
	}
	t.computeSignatures()
	return t
}

func (t *tree) len() int { return len(t.nodes) }

// root returns the post-order index of the document node (always last).
func (t *tree) root() int { return len(t.nodes) - 1 }

// computeSignatures fills weight and sig in one post-order sweep
// (Phase 2). The signature of a node hashes its type, label, value,
// attributes (sorted) and the signatures of its children in order, so
// it uniquely represents the content of the whole subtree. Weights
// follow Section 5.2: 1 + log2(1+len) for leaves carrying text,
// 1 + sum(children) for elements.
func (t *tree) computeSignatures() {
	for i, x := range t.nodes { // post-order: children before parents
		h := newHash()
		h.mixByte(byte(x.Type))
		h.mixString(x.Name)
		switch x.Type {
		case dom.Element, dom.Document:
			for _, a := range sortedAttrs(x) {
				h.mixString(a.Name)
				h.mixByte(0x1)
				h.mixString(a.Value)
				h.mixByte(0x2)
			}
			w := 1.0
			for _, c := range x.Children {
				ci := t.index[c]
				h.mixUint64(t.sig[ci])
				w += t.weight[ci]
			}
			t.weight[i] = w
		default: // Text, Comment, ProcInst
			h.mixString(x.Value)
			t.weight[i] = 1 + math.Log2(float64(1+len(x.Value)))
		}
		t.sig[i] = h.sum()
	}
	t.totalWeight = t.weight[t.root()]
}

// ancestor returns the index of the level-th ancestor of i, or -1.
func (t *tree) ancestor(i, level int) int {
	for ; level > 0 && i >= 0; level-- {
		i = t.parent[i]
	}
	return i
}

// sortedAttrs mirrors dom's canonical ordering without exporting it.
func sortedAttrs(n *dom.Node) []dom.Attr {
	if len(n.Attrs) < 2 {
		return n.Attrs
	}
	s := make([]dom.Attr, len(n.Attrs))
	copy(s, n.Attrs)
	for i := 1; i < len(s); i++ { // insertion sort: attr lists are tiny
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// fnv1a, inlined to avoid per-node allocations of hash.Hash64.
type hash64 uint64

func newHash() hash64 { return 14695981039346656037 }

func (h *hash64) mixByte(b byte) {
	*h = (*h ^ hash64(b)) * 1099511628211
}

func (h *hash64) mixString(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * 1099511628211
	}
	x = (x ^ 0x1f) * 1099511628211 // terminator so "ab","c" != "a","bc"
	*h = hash64(x)
}

func (h *hash64) mixUint64(v uint64) {
	x := uint64(*h)
	for s := 0; s < 64; s += 8 {
		x = (x ^ (v >> s & 0xff)) * 1099511628211
	}
	*h = hash64(x)
}

func (h hash64) sum() uint64 { return uint64(h) }
