package diff_test

// These tests pin the tentpole invariant of the parallel diff core:
// Options.Workers changes scheduling, never the delta. They live in an
// external test package so they can drive changesim (which imports
// diff) as the corpus generator.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// corpusPair generates one old/new document pair of the seeded corpus.
func corpusPair(t *testing.T, seed int64, bytes int, rate float64) (*dom.Node, *dom.Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var oldDoc *dom.Node
	switch seed % 3 {
	case 0:
		oldDoc = changesim.CatalogOfSize(rng, bytes)
	case 1:
		oldDoc = changesim.Generic(rng, bytes/24, 8, 6)
	default:
		oldDoc = changesim.AddressBook(rng, bytes/200)
	}
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(rate, seed+99))
	if err != nil {
		t.Fatal(err)
	}
	return oldDoc, sim.New
}

// TestDeltaIdenticalAcrossWorkerCounts diffs a seeded changesim corpus
// at Workers ∈ {1,2,4,8} and requires byte-identical delta XML, for
// both matchers: BULD's parallel phases and SFTM's (whose matching is
// sequential by design, so any divergence means a tree phase leaked
// scheduling order into the result). The sizes straddle
// minParallelNodes so both the parallel build and its sequential
// fallback are exercised; SFTM runs the smaller cases to keep the
// suite quick.
func TestDeltaIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		bytes int
		rate  float64
		sftm  bool
	}{
		{1, 4_000, 0.10, true},
		{2, 60_000, 0.10, true},
		{3, 120_000, 0.05, false},
		{4, 200_000, 0.30, false},
		{5, 250_000, 0.20, false},
	} {
		matchers := []diff.Matcher{diff.MatcherBULD}
		if tc.sftm {
			matchers = append(matchers, diff.MatcherSFTM)
		}
		for _, matcher := range matchers {
			t.Run(fmt.Sprintf("seed%d-%dB-%s", tc.seed, tc.bytes, matcher), func(t *testing.T) {
				oldDoc, newDoc := corpusPair(t, tc.seed, tc.bytes, tc.rate)
				var ref string
				for _, workers := range []int{1, 2, 4, 8} {
					d, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), diff.Options{Matcher: matcher, Workers: workers})
					if err != nil {
						t.Fatalf("Workers=%d: %v", workers, err)
					}
					text, err := d.MarshalText()
					if err != nil {
						t.Fatalf("Workers=%d: marshal: %v", workers, err)
					}
					if workers == 1 {
						ref = string(text)
						continue
					}
					if string(text) != ref {
						t.Fatalf("Workers=%d delta differs from Workers=1\nw1: %s\nw%d: %s",
							workers, ref, workers, text)
					}
				}
			})
		}
	}
}

// TestConcurrentDiffsSharePools runs many parallel Diff calls through
// the shared tree/matcher/lcs pools (this is the server's steady
// state). Under -race — the repo's race gate runs the whole package —
// it doubles as the data-race check on the pools and on the worker
// fan-out; functionally it asserts every goroutine still gets the
// deterministic delta for its input.
func TestConcurrentDiffsSharePools(t *testing.T) {
	type job struct {
		oldDoc, newDoc *dom.Node
		want           string
	}
	jobs := make([]job, 4)
	for i := range jobs {
		oldDoc, newDoc := corpusPair(t, int64(i), 30_000+10_000*i, 0.10)
		d, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), diff.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		text, err := d.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{oldDoc, newDoc, string(text)}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 4; round++ {
		for i := range jobs {
			wg.Add(1)
			go func(j job, workers int) {
				defer wg.Done()
				d, err := diff.Diff(j.oldDoc.Clone(), j.newDoc.Clone(), diff.Options{Workers: workers})
				if err != nil {
					errs <- err
					return
				}
				text, err := d.MarshalText()
				if err != nil {
					errs <- err
					return
				}
				if string(text) != j.want {
					errs <- fmt.Errorf("concurrent diff (Workers=%d) produced a different delta", workers)
				}
			}(jobs[i], 1+(round+i)%4)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
