package diff_test

// FuzzDiffApply lives outside package diff so it can seed documents
// from internal/changesim (which itself imports diff) without an
// import cycle.

import (
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// FuzzDiffApply is the differential oracle over the whole pipeline: for
// an arbitrary well-formed document and an arbitrary mutation script,
// Diff followed by Apply must reproduce the mutated serialization
// byte-for-byte, and the delta must survive an XML serialize/parse
// round-trip unchanged. The worker count is drawn from the script so
// the fuzzer also exercises the parallel annotation paths.
func FuzzDiffApply(f *testing.F) {
	// Corpus: changesim generator outputs at small sizes, each paired
	// with scripts that cover every mutation opcode.
	rng := rand.New(rand.NewSource(42))
	seedDocs := []string{
		changesim.Catalog(rng, 2, 3).String(),
		changesim.AddressBook(rng, 4).String(),
		changesim.Generic(rng, 40, 5, 4).String(),
		changesim.Articles(rng, 2).String(),
		`<r><a x="1">t</a><b><c/><c/></b></r>`,
	}
	seedScripts := [][]byte{
		{},
		{0, 3, 7},                            // update a text
		{1, 2, 5, 2, 4, 0},                   // set attribute, delete
		{3, 1, 9, 4, 2, 11, 5, 6, 3},         // inserts and a move
		{5, 9, 1, 5, 3, 2, 0, 0, 0, 2, 1, 0}, // move-heavy then edits
	}
	for i, d := range seedDocs {
		f.Add(d, seedScripts[i%len(seedScripts)])
	}

	f.Fuzz(func(t *testing.T, docXML string, script []byte) {
		if len(docXML) > 8<<10 || len(script) > 256 {
			return // keep individual executions fast
		}
		oldDoc, err := dom.ParseString(docXML)
		if err != nil {
			return // not a well-formed document: out of scope
		}
		newDoc := oldDoc.Clone()
		applyScript(newDoc, script)
		// Scripts can leave adjacent text nodes behind (delete or move
		// the element separating two texts); those merge on any XML
		// reparse, so no tree holding them round-trips. Normalize into
		// the domain of parseable documents before diffing.
		mergeAdjacentText(newDoc)
		want := newDoc.String()

		workers := 1 + len(script)%4
		d, err := diff.Diff(oldDoc, newDoc, diff.Options{Workers: workers})
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		got, err := delta.ApplyClone(oldDoc, d)
		if err != nil {
			t.Fatalf("Apply: %v\ndelta: %v", err, d)
		}
		if got.String() != want {
			t.Fatalf("Diff→Apply mismatch\nold:  %s\nwant: %s\ngot:  %s", docXML, want, got.String())
		}

		// The delta must survive its own XML round-trip: serialize,
		// parse, re-serialize identical, and still apply to the same
		// result.
		text, err := d.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText: %v", err)
		}
		d2, err := delta.Parse(strings.NewReader(string(text)))
		if err != nil {
			t.Fatalf("reparsing own delta: %v\n%s", err, text)
		}
		text2, err := d2.MarshalText()
		if err != nil {
			t.Fatalf("re-marshaling reparsed delta: %v", err)
		}
		if string(text) != string(text2) {
			t.Fatalf("delta XML round-trip not stable\nfirst:  %s\nsecond: %s", text, text2)
		}
		got2, err := delta.ApplyClone(oldDoc, d2)
		if err != nil {
			t.Fatalf("applying reparsed delta: %v", err)
		}
		if got2.String() != want {
			t.Fatalf("reparsed delta produced a different document")
		}
	})
}

// applyScript interprets script bytes as a bounded edit sequence over
// doc: updates, attribute edits, deletes, inserts and moves, all chosen
// positionally so any byte string is a valid script.
func applyScript(doc *dom.Node, script []byte) {
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(script) {
			return 0, false
		}
		b := script[pos]
		pos++
		return b, true
	}
	for step := 0; step < 48; step++ {
		op, ok := next()
		if !ok {
			return
		}
		tb, ok := next()
		if !ok {
			return
		}
		vb, _ := next()
		nodes := dom.Preorder(doc)
		if len(nodes) <= 1 {
			doc.Append(dom.NewElement(letters(vb)))
			continue
		}
		target := nodes[1+int(tb)%(len(nodes)-1)] // never the document
		switch op % 6 {
		case 0: // update a value-carrying node
			if target.Type == dom.Text || target.Type == dom.Comment {
				target.Value = letters(vb)
			}
		case 1: // set or overwrite an attribute
			if target.Type == dom.Element {
				target.SetAttribute("k"+letters(vb%4), letters(vb))
			}
		case 2: // delete a subtree
			target.Detach()
		case 3: // insert an element
			insertUnder(target, dom.NewElement(letters(vb)), vb)
		case 4: // insert a text node
			insertUnder(target, dom.NewText(letters(vb)), vb)
		case 5: // move target under another element
			dest := nodes[int(vb)%len(nodes)]
			if dest.Type != dom.Element && dest.Type != dom.Document {
				continue
			}
			if inside(dest, target) || dest == target.Parent && len(dest.Children) < 2 {
				continue
			}
			target.Detach()
			p := int(tb) % (len(dest.Children) + 1)
			if dest.InsertAt(p, target) != nil {
				doc.Append(target) // reattach so the node is not lost
			}
		}
	}
}

// insertUnder places child under target when target can hold children,
// otherwise as its sibling.
func insertUnder(target, child *dom.Node, posByte byte) {
	parent := target
	if parent.Type != dom.Element && parent.Type != dom.Document {
		parent = target.Parent
	}
	if parent == nil {
		return
	}
	p := int(posByte) % (len(parent.Children) + 1)
	_ = parent.InsertAt(p, child)
}

// mergeAdjacentText concatenates runs of neighboring text children
// throughout the tree.
func mergeAdjacentText(n *dom.Node) {
	for i := 0; i+1 < len(n.Children); {
		a, b := n.Children[i], n.Children[i+1]
		if a.Type == dom.Text && b.Type == dom.Text {
			a.Value += b.Value
			n.RemoveAt(i + 1)
		} else {
			i++
		}
	}
	for _, c := range n.Children {
		mergeAdjacentText(c)
	}
}

// inside reports whether n lies in the subtree rooted at root.
func inside(n, root *dom.Node) bool {
	for ; n != nil; n = n.Parent {
		if n == root {
			return true
		}
	}
	return false
}

// letters maps a byte to a short lowercase string, keeping injected
// names and values inside XML's safe name alphabet.
func letters(b byte) string {
	s := string(rune('a' + b%26))
	return strings.Repeat(s, 1+int(b/26)%3)
}
