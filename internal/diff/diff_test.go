package diff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/dtd"
	"xydiff/internal/xid"
)

func parse(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// roundTrip asserts the central correctness property from the paper:
// the delta misses no changes. Applying it to the old version must
// produce the new version; applying its inverse must come back.
func roundTrip(t *testing.T, oldXML, newXML string, opts Options) *delta.Delta {
	t.Helper()
	oldDoc, newDoc := parse(t, oldXML), parse(t, newXML)
	d, err := Diff(oldDoc, newDoc, opts)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatalf("Apply: %v\ndelta:\n%s", err, d)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatalf("apply(old, delta) != new: %s\ndelta:\n%s\ngot: %s", dom.Diagnose(got, newDoc), d, got)
	}
	inv, err := d.Invert()
	if err != nil {
		t.Fatalf("Invert: %v\ndelta:\n%s", err, d)
	}
	back, err := delta.ApplyClone(got, inv)
	if err != nil {
		t.Fatalf("Apply inverse: %v\ndelta:\n%s", err, d)
	}
	if !dom.Equal(back, oldDoc) {
		t.Fatalf("invert round trip: %s", dom.Diagnose(back, oldDoc))
	}
	return d
}

func TestDiffIdenticalDocuments(t *testing.T) {
	xml := `<a><b>one</b><c x="1"><d/></c></a>`
	d := roundTrip(t, xml, xml, Options{})
	if !d.Empty() {
		t.Fatalf("identical documents produced ops:\n%s", d)
	}
}

func TestDiffPaperExample(t *testing.T) {
	oldXML := `<Category><Title>Digital Cameras</Title><Discount><Product><Name>tx123</Name><Price>$499</Price></Product></Discount><NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product></NewProducts></Category>`
	newXML := `<Category><Title>Digital Cameras</Title><Discount><Product><Name>zy456</Name><Price>$699</Price></Product></Discount><NewProducts><Product><Name>abc</Name><Price>$899</Price></Product></NewProducts></Category>`
	d := roundTrip(t, oldXML, newXML, Options{})
	c := d.Count()
	// The paper's expected delta: one delete (tx123), one insert (abc),
	// one move (zy456's product), one update (the price).
	if c.Deletes != 1 || c.Inserts != 1 || c.Moves != 1 || c.Updates != 1 {
		t.Fatalf("counts = %v, want 1 of each (delta:\n%s)", c, d)
	}
}

func TestDiffSingleTextUpdate(t *testing.T) {
	d := roundTrip(t,
		`<doc><p>hello</p><p>world</p></doc>`,
		`<doc><p>hello</p><p>there</p></doc>`, Options{})
	c := d.Count()
	if c.Total() != 1 || c.Updates != 1 {
		t.Fatalf("expected exactly one update, got %v:\n%s", c, d)
	}
}

func TestDiffPureInsert(t *testing.T) {
	d := roundTrip(t,
		`<list><item>a</item><item>b</item></list>`,
		`<list><item>a</item><item>new</item><item>b</item></list>`, Options{})
	c := d.Count()
	if c.Inserts != 1 || c.Deletes != 0 || c.Moves != 0 {
		t.Fatalf("counts = %v:\n%s", c, d)
	}
}

func TestDiffPureDelete(t *testing.T) {
	d := roundTrip(t,
		`<list><item>a</item><item>b</item><item>c</item></list>`,
		`<list><item>a</item><item>c</item></list>`, Options{})
	c := d.Count()
	if c.Deletes != 1 || c.Inserts != 0 {
		t.Fatalf("counts = %v:\n%s", c, d)
	}
}

func TestDiffMoveAcrossParents(t *testing.T) {
	d := roundTrip(t,
		`<r><left><big><x>1</x><y>2</y><z>3</z></big></left><right/></r>`,
		`<r><left/><right><big><x>1</x><y>2</y><z>3</z></big></right></r>`, Options{})
	c := d.Count()
	if c.Moves != 1 || c.Inserts != 0 || c.Deletes != 0 {
		t.Fatalf("expected a single move, got %v:\n%s", c, d)
	}
}

func TestDiffPermutationWithinParent(t *testing.T) {
	d := roundTrip(t,
		`<r><a>1</a><b>2</b><c>3</c><d>4</d></r>`,
		`<r><b>2</b><c>3</c><d>4</d><a>1</a></r>`, Options{})
	c := d.Count()
	if c.Moves != 1 || c.Inserts != 0 || c.Deletes != 0 {
		t.Fatalf("one intra-parent move expected, got %v:\n%s", c, d)
	}
}

func TestDiffAttributeChanges(t *testing.T) {
	d := roundTrip(t,
		`<r><e a="1" b="2" c="3">text</e></r>`,
		`<r><e a="1" b="20" d="4">text</e></r>`, Options{})
	c := d.Count()
	if c.AttrOps != 3 || c.Total() != 3 {
		t.Fatalf("expected exactly 3 attribute ops, got %v:\n%s", c, d)
	}
}

func TestDiffIDAttributesForceMatching(t *testing.T) {
	// Two products swap names; with pid declared as an ID attribute
	// the products must be matched by pid, producing value updates
	// rather than delete+insert.
	oldXML := `<!DOCTYPE catalog [<!ATTLIST product pid ID #REQUIRED>]>
<catalog><product pid="p1"><name>alpha</name></product><product pid="p2"><name>beta</name></product></catalog>`
	newXML := `<!DOCTYPE catalog [<!ATTLIST product pid ID #REQUIRED>]>
<catalog><product pid="p1"><name>beta prime</name></product><product pid="p2"><name>alpha prime</name></product></catalog>`
	d := roundTrip(t, oldXML, newXML, Options{})
	c := d.Count()
	if c.Updates != 2 || c.Deletes != 0 || c.Inserts != 0 {
		t.Fatalf("ID matching should force 2 updates, got %v:\n%s", c, d)
	}
}

func TestDiffExplicitIDAttrs(t *testing.T) {
	oldXML := `<catalog><product pid="p1"><name>alpha</name></product><product pid="p2"><name>beta</name></product></catalog>`
	newXML := `<catalog><product pid="p2"><name>beta</name></product><product pid="p1"><name>alpha</name></product></catalog>`
	opts := Options{IDAttrs: dtd.IDAttrs{"product": "pid"}}
	d := roundTrip(t, oldXML, newXML, opts)
	c := d.Count()
	if c.Moves != 1 || c.Deletes != 0 || c.Inserts != 0 || c.Updates != 0 {
		t.Fatalf("swap with IDs should be one move, got %v:\n%s", c, d)
	}
}

func TestDiffIDExclusionPreventsOtherMatches(t *testing.T) {
	// Same content, different ID values: the paper says nodes carrying
	// an unmatched ID cannot be matched at all, so this must be a
	// delete + insert despite identical subtree signatures.
	opts := Options{IDAttrs: dtd.IDAttrs{"product": "pid"}}
	d := roundTrip(t,
		`<catalog><product pid="p1"><name>alpha</name></product></catalog>`,
		`<catalog><product pid="p9"><name>alpha</name></product></catalog>`, opts)
	c := d.Count()
	if c.Deletes != 1 || c.Inserts != 1 {
		t.Fatalf("unmatched IDs must force delete+insert, got %v:\n%s", c, d)
	}
}

func TestDiffLazyDownPriceUpdate(t *testing.T) {
	// The paper's lazy-down scenario: matching Name/zy456 pulls up the
	// Product, and the Price children then match via propagation even
	// though their subtrees differ.
	d := roundTrip(t,
		`<shop><Product><Name>zy456</Name><Price>$799</Price></Product><Product><Name>ab</Name><Price>$1</Price></Product></shop>`,
		`<shop><Product><Name>zy456</Name><Price>$699</Price></Product><Product><Name>ab</Name><Price>$1</Price></Product></shop>`,
		Options{})
	c := d.Count()
	if c.Updates != 1 || c.Deletes != 0 || c.Inserts != 0 {
		t.Fatalf("expected a single price update, got %v:\n%s", c, d)
	}
}

func TestDiffRootRelabeled(t *testing.T) {
	d := roundTrip(t, `<a><x>1</x></a>`, `<b><x>1</x></b>`, Options{})
	c := d.Count()
	if c.Deletes != 1 || c.Inserts != 1 {
		t.Fatalf("root relabel should delete+insert the root, got %v:\n%s", c, d)
	}
}

func TestDiffCommentsAndProcInsts(t *testing.T) {
	roundTrip(t,
		`<r><!--note--><?pi data?><x/></r>`,
		`<r><!--changed--><?pi other?><x/></r>`, Options{})
}

func TestDiffTextTypeChanges(t *testing.T) {
	roundTrip(t, `<r><a>text</a></r>`, `<r><a><sub/></a></r>`, Options{})
	roundTrip(t, `<r>just text</r>`, `<r><el/></r>`, Options{})
}

func TestDiffEmptyToContent(t *testing.T) {
	roundTrip(t, `<r/>`, `<r><a/><b>x</b></r>`, Options{})
	roundTrip(t, `<r><a/><b>x</b></r>`, `<r/>`, Options{})
}

func TestDiffMovedAndUpdatedSubtree(t *testing.T) {
	// A subtree that moves AND has an internal update: the move must be
	// detected (bottom-up from the unchanged heavy part) and the update
	// applied inside the moved subtree.
	roundTrip(t,
		`<r><src><prod><name>very long stable product name</name><price>10</price></prod></src><dst/></r>`,
		`<r><src/><dst><prod><name>very long stable product name</name><price>12</price></prod></dst></r>`,
		Options{})
}

func TestDiffDuplicateSubtreesPickParentSupported(t *testing.T) {
	// Two identical subtrees; one's parent is matched. The candidate
	// with the matched parent must win, keeping the delta minimal.
	d := roundTrip(t,
		`<r><keep><dup><v>same</v></dup></keep><other><dup><v>same</v></dup></other></r>`,
		`<r><keep><dup><v>same</v></dup></keep><other><dup><v>same</v></dup><extra/></other></r>`,
		Options{})
	c := d.Count()
	if c.Inserts != 1 || c.Total() != 1 {
		t.Fatalf("expected only the <extra/> insert, got %v:\n%s", c, d)
	}
}

func TestDiffDetailedStats(t *testing.T) {
	oldDoc := parse(t, `<a><b>one</b><c>two</c></a>`)
	newDoc := parse(t, `<a><b>one</b><c>three</c></a>`)
	r, err := DiffDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.OldNodes != 6 || r.NewNodes != 6 {
		t.Errorf("node counts = %d,%d, want 6,6", r.OldNodes, r.NewNodes)
	}
	if r.MatchedNodes != 6 {
		t.Errorf("matched = %d, want 6 (text updated in place)", r.MatchedNodes)
	}
	if r.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestDiffErrors(t *testing.T) {
	doc := parse(t, `<a/>`)
	if _, err := Diff(nil, doc, Options{}); err == nil {
		t.Error("nil old accepted")
	}
	if _, err := Diff(doc, nil, Options{}); err == nil {
		t.Error("nil new accepted")
	}
	if _, err := Diff(doc.Root(), doc, Options{}); err == nil {
		t.Error("element node accepted as document")
	}
}

func TestDiffPreservesXIDsAcrossVersions(t *testing.T) {
	oldDoc := parse(t, `<r><keep>stable</keep><del/></r>`)
	newDoc := parse(t, `<r><keep>stable</keep><ins/></r>`)
	xid.Assign(oldDoc)
	keepXID := dom.Select(oldDoc.Root(), "keep")[0].XID
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	newKeep := dom.Select(newDoc.Root(), "keep")[0]
	if newKeep.XID != keepXID {
		t.Errorf("keep XID = %d, want %d (persistent identity lost)", newKeep.XID, keepXID)
	}
	ins := dom.Select(newDoc.Root(), "ins")[0]
	if ins.XID == 0 {
		t.Error("inserted node has no XID")
	}
	if d.NextXID <= ins.XID {
		t.Errorf("NextXID %d must exceed all assigned XIDs (%d)", d.NextXID, ins.XID)
	}
}

func TestDiffSequentialVersions(t *testing.T) {
	// Three versions diffed pairwise; deltas chain.
	v1 := parse(t, `<log><e>1</e></log>`)
	v2 := parse(t, `<log><e>1</e><e>2</e></log>`)
	v3 := parse(t, `<log><e>2</e><e>3</e></log>`)
	d12, err := Diff(v1, v2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d23, err := Diff(v2, v3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(v1, d12)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := delta.ApplyClone(got, d23)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got2, v3) {
		t.Fatalf("chained application differs: %s", dom.Diagnose(got2, v3))
	}
}

func TestDiffOptionsVariants(t *testing.T) {
	oldXML := `<r><a><k>111</k></a><b><k>222</k></b><c><k>333</k></c></r>`
	newXML := `<r><c><k>333</k></c><a><k>111x</k></a><b><k>222</k></b></r>`
	for _, opts := range []Options{
		{},
		{EagerDown: true},
		{DisableIDAttributes: true},
		{LISWindow: -1},
		{LISWindow: 2},
		{PropagationPasses: 3},
		{MaxAncestorDepth: 5},
		{MaxCandidates: 1},
	} {
		roundTrip(t, oldXML, newXML, opts)
	}
}

func TestDiffDeltaXMLRoundTripApplies(t *testing.T) {
	oldDoc := parse(t, `<r><a>1</a><b>2</b></r>`)
	newDoc := parse(t, `<r><b>2</b><a>3</a><c/></r>`)
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := d.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := delta.ParseString(string(text))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	got, err := delta.ApplyClone(oldDoc, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatalf("serialized delta apply differs: %s", dom.Diagnose(got, newDoc))
	}
}

// randomDoc builds a random labeled tree for fuzz-style round trips.
func randomDoc(rng *rand.Rand, maxNodes int) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("root")
	doc.Append(root)
	nodes := []*dom.Node{root}
	labels := []string{"a", "b", "c", "item", "name"}
	budget := rng.Intn(maxNodes)
	for i := 0; i < budget; i++ {
		p := nodes[rng.Intn(len(nodes))]
		if rng.Intn(4) == 0 {
			// text child, only if last child isn't text
			if k := len(p.Children); k == 0 || p.Children[k-1].Type != dom.Text {
				p.Append(dom.NewText(fmt.Sprintf("t%d", rng.Intn(50))))
			}
			continue
		}
		el := dom.NewElement(labels[rng.Intn(len(labels))])
		if rng.Intn(3) == 0 {
			el.SetAttribute("k", fmt.Sprintf("%d", rng.Intn(10)))
		}
		p.Append(el)
		nodes = append(nodes, el)
	}
	return doc
}

func TestDiffRandomPairsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		oldDoc := randomDoc(rng, 40)
		newDoc := randomDoc(rng, 40)
		d, err := Diff(oldDoc, newDoc, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := delta.ApplyClone(oldDoc, d)
		if err != nil {
			t.Fatalf("trial %d apply: %v\nold: %s\nnew: %s\ndelta:\n%s", trial, err, oldDoc, newDoc, d)
		}
		if !dom.Equal(got, newDoc) {
			t.Fatalf("trial %d mismatch: %s\nold: %s\nnew: %s\ndelta:\n%s", trial, dom.Diagnose(got, newDoc), oldDoc, newDoc, d)
		}
		inv, err := d.Invert()
		if err != nil {
			t.Fatalf("trial %d invert: %v", trial, err)
		}
		back, err := delta.ApplyClone(got, inv)
		if err != nil {
			t.Fatalf("trial %d invert apply: %v", trial, err)
		}
		if !dom.Equal(back, oldDoc) {
			t.Fatalf("trial %d invert mismatch: %s", trial, dom.Diagnose(back, oldDoc))
		}
	}
}

func TestDiffRandomMutationsRoundTrip(t *testing.T) {
	// Mutate a document rather than diffing two unrelated ones: this
	// exercises the matcher's intended regime (mostly-similar trees).
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 120; trial++ {
		oldDoc := randomDoc(rng, 60)
		newDoc := oldDoc.Clone()
		mutate(rng, newDoc, 1+rng.Intn(8))
		d, err := Diff(oldDoc, newDoc, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := delta.ApplyClone(oldDoc, d)
		if err != nil {
			t.Fatalf("trial %d apply: %v\nold: %s\nnew: %s\ndelta:\n%s", trial, err, oldDoc, newDoc, d)
		}
		if !dom.Equal(got, newDoc) {
			t.Fatalf("trial %d mismatch: %s\nold: %s\nnew: %s\ndelta:\n%s", trial, dom.Diagnose(got, newDoc), oldDoc, newDoc, d)
		}
	}
}

// mutate applies n random edits in place.
func mutate(rng *rand.Rand, doc *dom.Node, n int) {
	for i := 0; i < n; i++ {
		nodes := dom.Preorder(doc)
		target := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(5) {
		case 0: // update text
			if target.Type == dom.Text {
				target.Value = fmt.Sprintf("u%d", rng.Intn(100))
			}
		case 1: // delete (not the document or root)
			if target.Parent != nil && target.Parent.Type != dom.Document {
				target.Detach()
			}
		case 2: // insert element
			if target.Type == dom.Element {
				el := dom.NewElement("ins")
				el.Append(dom.NewText(fmt.Sprintf("v%d", rng.Intn(100))))
				target.InsertAt(rng.Intn(len(target.Children)+1), el)
			}
		case 3: // move
			if target.Parent != nil && target.Parent.Type != dom.Document && target.Type == dom.Element {
				elems := []*dom.Node{}
				for _, cand := range nodes {
					if cand.Type == dom.Element && !contains(target, cand) {
						elems = append(elems, cand)
					}
				}
				if len(elems) > 0 {
					dst := elems[rng.Intn(len(elems))]
					target.Detach()
					dst.InsertAt(rng.Intn(len(dst.Children)+1), target)
				}
			}
		case 4: // attribute tweak
			if target.Type == dom.Element {
				target.SetAttribute("m", fmt.Sprintf("%d", rng.Intn(10)))
			}
		}
	}
}

func contains(root, n *dom.Node) bool {
	for ; n != nil; n = n.Parent {
		if n == root {
			return true
		}
	}
	return false
}

func TestTreeAnnotation(t *testing.T) {
	doc := parse(t, `<a><b>text</b><c/></a>`)
	tr := newTree(doc, 1, nil)
	if tr.len() != 5 {
		t.Fatalf("len = %d, want 5", tr.len())
	}
	if tr.root() != 4 || tr.nodes[tr.root()].Type != dom.Document {
		t.Fatal("root must be the document node, last in post-order")
	}
	// Weight of the document >= weight of <a> >= children sum.
	if tr.weight[tr.root()] < tr.weight[3] {
		t.Error("document weight below root element weight")
	}
	// text "text": weight 1 + log2(5) > 3.3 -> element b > that.
	idx := indexOf(tr)
	bIdx := idx[doc.Root().Children[0]]
	if tr.weight[bIdx] <= tr.weight[idx[doc.Root().Children[0].Children[0]]] {
		t.Error("element weight must exceed its child's")
	}
	// Identical subtrees share a signature; different ones do not.
	doc2 := parse(t, `<a><b>text</b><c/></a>`)
	tr2 := newTree(doc2, 1, nil)
	if tr.sig[tr.root()] != tr2.sig[tr2.root()] {
		t.Error("identical documents must share signatures")
	}
	doc3 := parse(t, `<a><b>texx</b><c/></a>`)
	tr3 := newTree(doc3, 1, nil)
	if tr.sig[tr.root()] == tr3.sig[tr3.root()] {
		t.Error("different documents share root signature")
	}
}

func TestSignatureAttrOrderInsensitive(t *testing.T) {
	a := newTree(parse(t, `<e x="1" y="2"/>`), 1, nil)
	b := newTree(parse(t, `<e y="2" x="1"/>`), 1, nil)
	if a.sig[a.root()] != b.sig[b.root()] {
		t.Error("attribute order changed the signature")
	}
}

func TestSignatureConcatenationAmbiguity(t *testing.T) {
	// "ab"+"" vs "a"+"b" style ambiguities must not collide.
	a := newTree(parse(t, `<r><e n="ab"/></r>`), 1, nil)
	b := newTree(parse(t, `<r><e n="a" m="b"/></r>`), 1, nil)
	if a.sig[a.root()] == b.sig[b.root()] {
		t.Error("attribute concatenation collision")
	}
}

func TestDepthBoundGrowsWithWeight(t *testing.T) {
	doc := parse(t, strings.Repeat("<a>", 1)+"<b><c><d/></c></b>"+strings.Repeat("</a>", 1))
	tr := newTree(doc, 1, nil)
	m := matcherFromPool(tr, tr, Options{}, 1)
	small := m.depthBound(0.001)
	big := m.depthBound(tr.totalWeight)
	if small < 1 {
		t.Errorf("depth bound must be >= 1, got %d", small)
	}
	if big <= small {
		t.Errorf("heavier subtrees must see further: small=%d big=%d", small, big)
	}
	m2 := matcherFromPool(tr, tr, Options{MaxAncestorDepth: 7}, 1)
	if m2.depthBound(0.5) != 7 {
		t.Error("MaxAncestorDepth override ignored")
	}
}
