package diff

import (
	"math/rand"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

func diffStep(t *testing.T, oldDoc *dom.Node, newXML string) (*dom.Node, *delta.Delta) {
	t.Helper()
	newDoc := parse(t, newXML)
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return newDoc, d
}

func TestComposeTwoDeltas(t *testing.T) {
	v1 := parse(t, `<r><a>1</a><b>2</b></r>`)
	v2, d12 := diffStep(t, v1, `<r><a>1</a><b>3</b><c>new</c></r>`)
	_, d23 := diffStep(t, v2, `<r><b>4</b><c>new</c></r>`)

	composed, err := Compose(v1, d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(v1, composed)
	if err != nil {
		t.Fatalf("apply composed: %v\n%s", err, composed)
	}
	v3 := parse(t, `<r><b>4</b><c>new</c></r>`)
	if !dom.Equal(got, v3) {
		t.Fatalf("composed result differs: %s", dom.Diagnose(got, v3))
	}
	// Intermediate churn collapses: <b> was updated twice -> one
	// update op with the original old value and the final new value.
	c := composed.Count()
	if c.Updates != 1 {
		t.Errorf("composed updates = %d, want 1:\n%s", c.Updates, composed)
	}
}

func TestComposeCancelsInsertThenDelete(t *testing.T) {
	v1 := parse(t, `<r><keep/></r>`)
	v2, d12 := diffStep(t, v1, `<r><keep/><temp>scratch</temp></r>`)
	_, d23 := diffStep(t, v2, `<r><keep/></r>`)
	composed, err := Compose(v1, d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	if !composed.Empty() {
		t.Fatalf("insert-then-delete should compose to the empty delta:\n%s", composed)
	}
}

func TestComposeCollapsesMoveChains(t *testing.T) {
	v1 := parse(t, `<r><a><x>heavy payload</x></a><b/><c/></r>`)
	v2, d12 := diffStep(t, v1, `<r><a/><b><x>heavy payload</x></b><c/></r>`)
	_, d23 := diffStep(t, v2, `<r><a/><b/><c><x>heavy payload</x></c></r>`)
	composed, err := Compose(v1, d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	cnt := composed.Count()
	if cnt.Moves != 1 || cnt.Total() != 1 {
		t.Fatalf("two moves should compose to one, got %v:\n%s", cnt, composed)
	}
}

func TestComposePreservesXIDAssignment(t *testing.T) {
	// Applying the composed delta must leave the document with the
	// exact same XIDs as applying the chain, so a store can substitute
	// one for the other.
	v1 := parse(t, `<r><a>1</a></r>`)
	v2, d12 := diffStep(t, v1, `<r><a>1</a><ins>fresh</ins></r>`)
	_, d23 := diffStep(t, v2, `<r><a>2</a><ins>fresh</ins><more/></r>`)

	viaChain := v1.Clone()
	if err := delta.Apply(viaChain, d12); err != nil {
		t.Fatal(err)
	}
	if err := delta.Apply(viaChain, d23); err != nil {
		t.Fatal(err)
	}
	composed, err := Compose(v1, d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	viaComposed, err := delta.ApplyClone(v1, composed)
	if err != nil {
		t.Fatal(err)
	}
	chainNodes := dom.Preorder(viaChain)
	composedNodes := dom.Preorder(viaComposed)
	if len(chainNodes) != len(composedNodes) {
		t.Fatal("node counts differ")
	}
	for i := range chainNodes {
		if chainNodes[i].XID != composedNodes[i].XID {
			t.Fatalf("XID divergence at %s: chain %d vs composed %d",
				chainNodes[i].Path(), chainNodes[i].XID, composedNodes[i].XID)
		}
	}
	if composed.NextXID < d23.NextXID {
		t.Errorf("composed NextXID %d < chain NextXID %d", composed.NextXID, d23.NextXID)
	}
}

func TestComposeInvertible(t *testing.T) {
	v1 := parse(t, `<r><a>1</a><b>2</b><c>3</c></r>`)
	v2, d12 := diffStep(t, v1, `<r><b>2</b><a>1</a></r>`)
	_, d23 := diffStep(t, v2, `<r><b>9</b><a>1</a><d/></r>`)
	composed, err := Compose(v1, d12, d23)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := delta.ApplyClone(v1, composed)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := composed.Invert()
	if err != nil {
		t.Fatal(err)
	}
	back, err := delta.ApplyClone(v3, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(back, v1) {
		t.Fatalf("inverted composition differs: %s", dom.Diagnose(back, v1))
	}
}

func TestComposeEmptyChainAndErrors(t *testing.T) {
	v1 := parse(t, `<r/>`)
	d, err := Compose(v1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Error("empty chain should compose to empty delta")
	}
	if _, err := Compose(nil); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := Compose(v1.Root()); err == nil {
		t.Error("element base accepted")
	}
	bogus := &delta.Delta{Ops: []delta.Op{delta.Update{XID: 999, Old: "x", New: "y"}}}
	if _, err := Compose(v1, bogus); err == nil {
		t.Error("inapplicable delta accepted")
	}
}

func TestComposeRandomChains(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		base := randomDoc(rng, 40)
		// Build a chain of 3 diffs over random mutations.
		cur := base
		var chain []*delta.Delta
		for step := 0; step < 3; step++ {
			next := cur.Clone()
			mutate(rng, next, 1+rng.Intn(5))
			d, err := Diff(cur, next, Options{})
			if err != nil {
				t.Fatal(err)
			}
			chain = append(chain, d)
			cur = next
		}
		composed, err := Compose(base, chain...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := delta.ApplyClone(base, composed)
		if err != nil {
			t.Fatalf("trial %d apply: %v", trial, err)
		}
		if !dom.Equal(got, cur) {
			t.Fatalf("trial %d: composed != chained: %s", trial, dom.Diagnose(got, cur))
		}
	}
}
