// Package diff implements BULD ("Bottom-Up, Lazy-Down"), the paper's
// diff algorithm for XML documents (Section 5). Given two versions of
// a document it computes a matching between their nodes and derives a
// completed delta (package delta) with insert, delete, update, move and
// attribute operations.
//
// The five phases follow the paper:
//
//  1. match nodes carrying DTD-declared ID attributes;
//  2. compute subtree signatures and weights, seed a priority queue
//     with the new document's subtrees;
//  3. pop subtrees heaviest-first and match them against old subtrees
//     with identical signatures, choosing the candidate closest to the
//     existing matching and propagating accepted matches to ancestors
//     (bounded by subtree weight);
//  4. structure-based bottom-up and top-down propagation passes;
//  5. construct the delta, using a maximum-weight increasing
//     subsequence to emit an optimal set of intra-parent moves (or the
//     paper's windowed heuristic for very long child lists).
package diff

import (
	"fmt"

	"xydiff/internal/dtd"
)

// DefaultLISWindow is the paper's block length for the intra-parent
// move heuristic ("a maximum length (e.g. 50)").
const DefaultLISWindow = 50

// Matcher selects the node-matching algorithm. Every matcher feeds the
// same Phase 5 delta construction, so the choice changes which nodes
// correspond — never the delta format, Apply semantics, or storage.
type Matcher string

const (
	// MatcherBULD is the paper's matcher: exact subtree signatures,
	// heaviest-first matching, ID attributes when a DTD declares them.
	// The default; best for well-formed XML.
	MatcherBULD Matcher = "buld"

	// MatcherSFTM is the similarity-based flexible matcher (package
	// sftm): IDF-weighted token overlap with structural propagation.
	// Built for real-web HTML, where nothing is well-formed, IDs are
	// absent or unstable, and text is rewritten in place.
	MatcherSFTM Matcher = "sftm"
)

// ParseMatcher normalizes a user-supplied matcher name. The empty
// string selects the default (BULD).
func ParseMatcher(s string) (Matcher, error) {
	switch Matcher(s) {
	case "", MatcherBULD:
		return MatcherBULD, nil
	case MatcherSFTM:
		return MatcherSFTM, nil
	}
	return "", fmt.Errorf("diff: unknown matcher %q (want %q or %q)", s, MatcherBULD, MatcherSFTM)
}

// Matchers lists the valid matcher names, default first.
func Matchers() []Matcher {
	return []Matcher{MatcherBULD, MatcherSFTM}
}

// Options tune the algorithm. The zero value reproduces the paper's
// configuration.
type Options struct {
	// Matcher selects the matching algorithm. Empty selects
	// MatcherBULD, the paper's algorithm; MatcherSFTM switches to the
	// similarity-based flexible matcher for real-web HTML.
	Matcher Matcher

	// IDAttrs declares ID attributes explicitly (element name -> ID
	// attribute name), in addition to any discovered from the old
	// document's internal DTD subset.
	IDAttrs dtd.IDAttrs

	// DisableIDAttributes skips Phase 1 entirely (ablation: the paper
	// notes ID attributes decide most matches when present).
	DisableIDAttributes bool

	// LISWindow bounds the exact maximum-weight-increasing-subsequence
	// computation for intra-parent move detection. Child lists longer
	// than the window use the paper's block heuristic. 0 selects
	// DefaultLISWindow; a negative value forces the exact algorithm
	// regardless of length.
	LISWindow int

	// PropagationPasses is the number of bottom-up/top-down rounds in
	// Phase 4. 0 selects the paper's single round.
	PropagationPasses int

	// EagerDown disables the "lazy down" strategy: after every accepted
	// match, unique-label children are matched immediately instead of
	// waiting for Phase 4 (ablation; the paper argues lazy is what
	// keeps the algorithm quasi-linear).
	EagerDown bool

	// MaxAncestorDepth overrides the weight-dependent bound
	// d = 1 + ceil(log2(n) * W/W0) used both for candidate evaluation
	// and for bottom-up ancestor matching. 0 keeps the formula.
	MaxAncestorDepth int

	// MaxCandidates caps how many equal-signature candidates are
	// scanned per ancestor level before giving up (the secondary index
	// still finds parent-supported candidates in O(1)). 0 selects 64.
	MaxCandidates int

	// Workers bounds the goroutines used for the parallel parts of a
	// diff (tree annotation, signature indexing). 0 selects
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. The delta is
	// bit-identical for every value: parallelism changes who computes an
	// annotation, never what is computed.
	Workers int

	// keepNewXIDs makes delta construction retain non-zero XIDs already
	// present on unmatched new nodes instead of allocating fresh ones.
	// Compose uses it so an aggregated delta assigns the same
	// identifiers the original chain did.
	keepNewXIDs bool

	// done, when non-nil, aborts the diff once the channel closes
	// (between phases and periodically inside the Phase 3 loop). Set
	// through DiffContext.
	done <-chan struct{}
}

func (o Options) lisWindow() int {
	switch {
	case o.LISWindow < 0:
		return 1 << 30 // effectively unbounded: exact everywhere
	case o.LISWindow == 0:
		return DefaultLISWindow
	default:
		return o.LISWindow
	}
}

func (o Options) passes() int {
	if o.PropagationPasses <= 0 {
		return 1
	}
	return o.PropagationPasses
}

func (o Options) workers() int {
	return defaultWorkers(o.Workers)
}

func (o Options) matcher() Matcher {
	if o.Matcher == "" {
		return MatcherBULD
	}
	return o.Matcher
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates <= 0 {
		return 64
	}
	return o.MaxCandidates
}
