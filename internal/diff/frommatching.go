package diff

import (
	"fmt"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// FromMatching builds a completed delta from an externally computed
// node matching (old node -> new node). It exists so alternative
// matching algorithms — the baselines of the paper's Section 3 — can be
// compared with BULD on equal footing: same delta construction, same
// intra-parent move optimization, same representation.
//
// Pairs that are structurally impossible (different node types or
// labels, either side already used) are silently dropped; the document
// nodes are always matched. The same XID side effects as Diff apply.
func FromMatching(oldDoc, newDoc *dom.Node, pairs map[*dom.Node]*dom.Node, opts Options) (*delta.Delta, error) {
	if oldDoc == nil || newDoc == nil {
		return nil, fmt.Errorf("diff: nil document")
	}
	if oldDoc.Type != dom.Document || newDoc.Type != dom.Document {
		return nil, fmt.Errorf("diff: arguments must be Document nodes")
	}
	workers := opts.workers()
	oldT := newTree(oldDoc, workers, nil)
	defer oldT.release()
	newT := newTree(newDoc, workers, nil)
	defer newT.release()
	m := matcherFromPool(oldT, newT, opts, workers)
	defer m.release()
	m.setMatch(oldT.root(), newT.root())
	// The external pairs address dom nodes; the annotation no longer
	// keeps a node→index map, so build one per side for this call.
	oldIdx := indexOf(oldT)
	newIdx := indexOf(newT)
	for o, n := range pairs {
		oi, ok := oldIdx[o]
		if !ok {
			return nil, fmt.Errorf("diff: matching references a node outside the old document")
		}
		ni, ok := newIdx[n]
		if !ok {
			return nil, fmt.Errorf("diff: matching references a node outside the new document")
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
		}
	}
	return m.buildDelta(), nil
}

func indexOf(t *tree) map[*dom.Node]int {
	idx := make(map[*dom.Node]int, t.len())
	for i, n := range t.nodes {
		idx[n] = i
	}
	return idx
}
