package diff

import (
	"context"
	"errors"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// errCanceled is the sentinel the phases return when Options.done
// fires; DiffContext translates it into the context's own error.
var errCanceled = errors.New("diff: canceled")

// DiffContext is Diff honouring context cancellation: a long diff
// aborts between phases — and inside the Phase 3 matching loop, where
// large documents spend most of their time — as soon as ctx is done.
// The returned error is ctx.Err() in that case. Both documents may
// have received partial XID annotations by then and should be
// discarded by the caller.
func DiffContext(ctx context.Context, oldDoc, newDoc *dom.Node, opts Options) (*delta.Delta, error) {
	r, err := DiffDetailedContext(ctx, oldDoc, newDoc, opts)
	if err != nil {
		return nil, err
	}
	return r.Delta, nil
}

// DiffDetailedContext is DiffDetailed honouring context cancellation.
func DiffDetailedContext(ctx context.Context, oldDoc, newDoc *dom.Node, opts Options) (*Result, error) {
	opts.done = ctx.Done()
	r, err := DiffDetailed(oldDoc, newDoc, opts)
	if err != nil {
		if errors.Is(err, errCanceled) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return r, nil
}

// canceled reports whether the options' done channel has fired.
func (o Options) canceled() bool {
	if o.done == nil {
		return false
	}
	select {
	case <-o.done:
		return true
	default:
		return false
	}
}
