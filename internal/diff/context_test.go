package diff_test

import (
	"context"
	"math/rand"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
)

func TestDiffContextCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	oldDoc := changesim.Catalog(rng, 3, 5)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := diff.DiffContext(context.Background(), oldDoc, sim.New, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Error("expected a non-empty delta")
	}
}

func TestDiffContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	oldDoc := changesim.Catalog(rng, 4, 10)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first phase boundary must abort
	if _, err := diff.DiffContext(ctx, oldDoc.Clone(), sim.New.Clone(), diff.Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDiffDetailedContextDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	oldDoc := changesim.Generic(rng, 400, 6, 5)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.3, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := diff.DiffDetailedContext(ctx, oldDoc, sim.New, diff.Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled (the internal sentinel must not leak)", err)
	}
}
