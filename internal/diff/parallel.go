package diff

import (
	"runtime"
	"sync"
	"sync/atomic"

	"xydiff/internal/dom"
)

// minParallelNodes is the document size below which the fan-out
// bookkeeping costs more than it saves; smaller documents always build
// sequentially regardless of Options.Workers.
const minParallelNodes = 2048

// runParallel invokes fn(k) for every k in [0,n) on at most workers
// goroutines. Tasks are claimed from a shared counter (cheap work
// stealing, so one oversized task does not idle the rest of the pool);
// every task writes only its own disjoint state, so scheduling order
// never shows in the results. It returns once all n tasks finished.
func runParallel(workers, n int, fn func(k int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}

// block is one unit of parallel annotation work: a subtree whose nodes
// occupy a contiguous post-order index range, built independently of
// every other block.
type block struct {
	root      *dom.Node
	size      int32 // node count of the subtree
	idxStart  int32 // first post-order index of the block
	kidsStart int32 // first kids-array slot of the block
	pos       int32 // childPos of the block root under its parent
}

// spineEntry is one expanded ancestor node: its children are blocks or
// deeper spine nodes, and its own annotation is finished sequentially
// after the parallel fill (its children's signatures are ready then).
type spineEntry struct {
	node    *dom.Node
	self    int32   // post-order index
	kidsOff int32   // start of its children block in kids
	pos     int32   // childPos under its parent
	kidIdx  []int32 // post-order indexes of its children, in order
}

// buildParallel annotates the document by decomposing it into subtree
// blocks and filling them on a bounded worker pool. It reports false
// when the decomposition is not worth it (document too small or
// degenerate); the arrays are untouched in that case.
//
// The resulting arrays are identical to the sequential build for every
// worker count: post-order indexes, parents, weights and signatures
// are intrinsic to the document, and the kids blocks — whose layout
// does depend on the decomposition — are only ever read through
// child(i, pos).
func (t *tree) buildParallel(workers int, done <-chan struct{}) bool {
	blocks, spine := decompose(t.doc, workers)
	if len(blocks) < 2 {
		return false
	}

	// Size every block in parallel; sizes drive the index layout.
	runParallel(workers, len(blocks), func(k int) {
		blocks[k].size = int32(blocks[k].root.Size())
	})
	n := len(spine)
	for i := range blocks {
		n += int(blocks[i].size)
	}
	if n < minParallelNodes {
		// Fall back: let the sequential path reuse the size we already
		// paid for is not worth plumbing; the document is tiny.
		return false
	}
	t.grow(n)

	// Lay out the post-order index space and the kids regions exactly
	// as one sequential walk would, recursing over the spine skeleton.
	spineSet := make(map[*dom.Node]int, len(spine))
	for i, s := range spine {
		spineSet[s] = i
	}
	blockOf := make(map[*dom.Node]*block, len(blocks))
	for i := range blocks {
		blockOf[blocks[i].root] = &blocks[i]
	}
	entries := make([]spineEntry, 0, len(spine))
	var idx, off int32
	var place func(x *dom.Node, pos int32) int32
	place = func(x *dom.Node, pos int32) int32 {
		if _, ok := spineSet[x]; !ok {
			b := blockOf[x]
			b.idxStart, b.kidsStart, b.pos = idx, off, pos
			idx += b.size
			off += b.size - 1
			return idx - 1 // a subtree's root is post-order-last
		}
		r := off
		off += int32(len(x.Children))
		e := spineEntry{node: x, kidsOff: r, pos: pos, kidIdx: make([]int32, len(x.Children))}
		for j, c := range x.Children {
			e.kidIdx[j] = place(c, int32(j))
		}
		e.self = idx
		idx++
		entries = append(entries, e) // appended post-order: children first
		return e.self
	}
	place(t.doc, 0)

	// Parallel fill of the blocks.
	runParallel(workers, len(blocks), func(k int) {
		b := builder{t: t, done: done}
		b.build(blocks[k].root, blocks[k].idxStart, blocks[k].kidsStart, blocks[k].pos)
	})

	// Finish the spine bottom-up: children signatures and weights are
	// all in place now, whichever worker produced them.
	fin := builder{t: t, done: done}
	for i := range entries {
		fin.finishSpine(&entries[i])
	}
	t.parent[n-1] = -1
	t.finish()
	return true
}

// finishSpine annotates one expanded ancestor from its already-built
// children, mirroring the tail of builder.build.
func (b *builder) finishSpine(e *spineEntry) {
	t := b.t
	self := e.self
	t.nodes[self] = e.node
	t.childPos[self] = e.pos
	t.kidStart[self] = e.kidsOff
	h := dom.NewHash64()
	b.attrs = h.HashNodeScratch(e.node, b.attrs)
	w := 1.0
	for j, ci := range e.kidIdx {
		t.kids[e.kidsOff+int32(j)] = ci
		t.parent[ci] = self
		t.childPos[ci] = int32(j)
		h.MixUint64(t.sig[ci])
		w += t.weight[ci]
	}
	t.weight[self] = w
	t.sig[self] = h.Sum()
}

// decompose picks the parallel work units: it expands the document
// level by level until at least targetBlocks disjoint subtrees are on
// the frontier (or nothing more can be expanded). Expanded ancestors
// become the spine, returned in expansion order.
func decompose(doc *dom.Node, workers int) (blocks []block, spine []*dom.Node) {
	targetBlocks := workers * 4
	frontier := []*dom.Node{doc}
	for round := 0; round < 16 && len(frontier) < targetBlocks; round++ {
		next := make([]*dom.Node, 0, len(frontier)*4)
		expanded := false
		for _, f := range frontier {
			if len(f.Children) == 0 {
				next = append(next, f)
				continue
			}
			spine = append(spine, f)
			next = append(next, f.Children...)
			expanded = true
		}
		frontier = next
		if !expanded {
			break
		}
	}
	if len(spine) == 0 {
		return nil, nil
	}
	blocks = make([]block, len(frontier))
	for i, f := range frontier {
		blocks[i] = block{root: f}
	}
	return blocks, spine
}

// defaultWorkers resolves Options.Workers: zero or negative means one
// goroutine per available CPU.
func defaultWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
