package diff

import (
	"fmt"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// PhaseTimings records where the wall-clock time of one diff went,
// mirroring the decomposition of the paper's Figure 4.
type PhaseTimings struct {
	Phase1 time.Duration // ID attribute matching + propagation
	Phase2 time.Duration // tree annotation: signatures, weights, indexes
	Phase3 time.Duration // BULD matching loop
	Phase4 time.Duration // bottom-up / top-down propagation
	Phase5 time.Duration // delta construction
}

// Total sums the phase durations.
func (p PhaseTimings) Total() time.Duration {
	return p.Phase1 + p.Phase2 + p.Phase3 + p.Phase4 + p.Phase5
}

// Result carries the delta plus the measurements the experiments use.
type Result struct {
	Delta   *delta.Delta
	Timings PhaseTimings

	// Matcher is the algorithm that produced the matching.
	Matcher Matcher
	// OldNodes and NewNodes are total node counts (document included).
	OldNodes, NewNodes int
	// MatchedNodes counts old nodes that found a counterpart.
	MatchedNodes int
}

// Diff computes the changes that transform oldDoc into newDoc and
// returns them as a completed delta.
//
// Both arguments must be Document nodes. Diff assigns persistent
// identifiers as a side effect: oldDoc receives post-order XIDs if it
// has none yet, and newDoc's nodes receive their XIDs (inherited
// through the matching, or fresh for inserted nodes) so the caller can
// diff the next version against newDoc directly.
func Diff(oldDoc, newDoc *dom.Node, opts Options) (*delta.Delta, error) {
	r, err := DiffDetailed(oldDoc, newDoc, opts)
	if err != nil {
		return nil, err
	}
	return r.Delta, nil
}

// DiffDetailed is Diff with per-phase timings and matching statistics.
func DiffDetailed(oldDoc, newDoc *dom.Node, opts Options) (*Result, error) {
	if oldDoc == nil || newDoc == nil {
		return nil, fmt.Errorf("diff: nil document")
	}
	if oldDoc.Type != dom.Document || newDoc.Type != dom.Document {
		return nil, fmt.Errorf("diff: arguments must be Document nodes (got %v, %v)", oldDoc.Type, newDoc.Type)
	}
	switch opts.matcher() {
	case MatcherBULD:
	case MatcherSFTM:
		return diffSFTM(oldDoc, newDoc, opts)
	default:
		return nil, fmt.Errorf("diff: unknown matcher %q", opts.Matcher)
	}
	var r Result
	r.Matcher = MatcherBULD

	// Phase 2 first in execution order: the annotation arrays are the
	// substrate every other phase works on. With more than one worker
	// the two documents annotate concurrently, each side fanning out
	// over its decomposition blocks with its share of the budget.
	workers := opts.workers()
	start := time.Now()
	var oldT, newT *tree
	if workers > 1 {
		trees := [2]**tree{&oldT, &newT}
		docs := [2]*dom.Node{oldDoc, newDoc}
		share := [2]int{(workers + 1) / 2, workers / 2}
		runParallel(2, 2, func(k int) {
			*trees[k] = newTree(docs[k], share[k], opts.done)
		})
	} else {
		oldT = newTree(oldDoc, 1, opts.done)
		newT = newTree(newDoc, 1, opts.done)
	}
	defer oldT.release()
	defer newT.release()
	m := matcherFromPool(oldT, newT, opts, workers)
	defer m.release()
	r.Timings.Phase2 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	m.phase1IDs()
	r.Timings.Phase1 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	m.phase3BULD()
	r.Timings.Phase3 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	m.phase4Propagate()
	r.Timings.Phase4 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	r.Delta = m.buildDelta()
	r.Timings.Phase5 = time.Since(start)

	r.OldNodes, r.NewNodes = oldT.len(), newT.len()
	for _, ni := range m.oldToNew {
		if ni >= 0 {
			r.MatchedNodes++
		}
	}
	return &r, nil
}
