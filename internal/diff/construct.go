package diff

import (
	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/lcs"
	"xydiff/internal/xid"
)

// buildDelta is Phase 5: given the final matching, derive a completed
// delta. XIDs are assigned here: the old document keeps (or receives)
// its post-order XIDs, matched new nodes inherit them, and unmatched
// new nodes draw fresh identifiers from the allocator in post-order.
func (m *matcher) buildDelta() *delta.Delta {
	if needsXIDs(m.old.doc) {
		xid.Assign(m.old.doc)
	}
	alloc := xid.AllocatorFor(m.old.doc)

	// Transfer / allocate identifiers for the new version.
	var maxXID int64
	for ni, n := range m.new.nodes { // post-order
		switch oi := m.newToOld[ni]; {
		case oi >= 0:
			n.XID = m.old.nodes[oi].XID
		case m.opts.keepNewXIDs && n.XID != 0:
			// Compose: the chain already named this node.
		default:
			n.XID = alloc.Next()
		}
		if n.XID > maxXID {
			maxXID = n.XID
		}
	}

	d := &delta.Delta{}

	// Updates and attribute changes on matched pairs.
	for oi, ni := range m.oldToNew {
		if ni < 0 {
			continue
		}
		o, n := m.old.nodes[oi], m.new.nodes[ni]
		switch o.Type {
		case dom.Text, dom.Comment, dom.ProcInst:
			if o.Value != n.Value {
				d.Ops = append(d.Ops, delta.Update{XID: o.XID, Old: o.Value, New: n.Value})
			}
		case dom.Element:
			m.diffAttributes(d, o, n)
		}
	}

	// Deletes: maximal unmatched old subtrees.
	m.old.walkPre(m.old.root(), func(oi int) bool {
		if m.oldToNew[oi] >= 0 {
			return true // matched: descend
		}
		if po := int(m.old.parent[oi]); po >= 0 && m.oldToNew[po] >= 0 {
			o := m.old.nodes[oi]
			content := m.pruneOld(oi)
			d.Ops = append(d.Ops, delta.Delete{
				XID:     o.XID,
				XIDMap:  xid.Of(content),
				Parent:  m.old.nodes[po].XID,
				Pos:     int(m.old.childPos[oi]),
				Subtree: content,
			})
		}
		return true // descend: matched descendants still need move ops
	})

	// Inserts: maximal unmatched new subtrees.
	m.new.walkPre(m.new.root(), func(ni int) bool {
		if m.newToOld[ni] >= 0 {
			return true
		}
		if pn := int(m.new.parent[ni]); pn >= 0 && m.newToOld[pn] >= 0 {
			n := m.new.nodes[ni]
			content := m.pruneNew(ni)
			d.Ops = append(d.Ops, delta.Insert{
				XID:     n.XID,
				XIDMap:  xid.Of(content),
				Parent:  m.new.nodes[pn].XID,
				Pos:     int(m.new.childPos[ni]),
				Subtree: content,
			})
		}
		return true
	})

	// Inter-parent moves.
	for oi, ni := range m.oldToNew {
		if ni < 0 || oi == m.old.root() {
			continue
		}
		po, pn := int(m.old.parent[oi]), int(m.new.parent[ni])
		if po < 0 || pn < 0 {
			continue
		}
		if m.newToOld[pn] != po {
			d.Ops = append(d.Ops, delta.Move{
				XID:        m.old.nodes[oi].XID,
				FromParent: m.old.nodes[po].XID,
				FromPos:    int(m.old.childPos[oi]),
				ToParent:   m.new.nodes[pn].XID,
				ToPos:      int(m.new.childPos[ni]),
			})
		}
	}

	// Intra-parent moves: for every matched pair of parents, children
	// that stayed may be out of order. A maximum-weight increasing
	// subsequence gives the cheapest set of nodes to move (moving a
	// node costs its weight); beyond the window the paper's block
	// heuristic applies.
	window := m.opts.lisWindow()
	for oi, ni := range m.oldToNew {
		if ni < 0 {
			continue
		}
		o, n := m.old.nodes[oi], m.new.nodes[ni]
		if len(o.Children) < 2 || len(n.Children) == 0 {
			continue
		}
		items := m.liItems[:0]
		kept := m.liKept[:0] // old child index per item
		for pos := range o.Children {
			ci := m.old.child(oi, pos)
			cn := m.oldToNew[ci]
			if cn < 0 || int(m.new.parent[cn]) != ni {
				continue
			}
			items = append(items, lcs.Item{Key: int(m.new.childPos[cn]), Weight: m.old.weight[ci]})
			kept = append(kept, ci)
		}
		m.liItems, m.liKept = items, kept
		if len(items) < 2 {
			continue
		}
		stay := lcs.WindowedIncreasing(items, window)
		inStay := m.liStay
		clear(inStay)
		for _, s := range stay {
			inStay[s] = true
		}
		for k, ci := range kept {
			if inStay[k] {
				continue
			}
			cn := m.oldToNew[ci]
			d.Ops = append(d.Ops, delta.Move{
				XID:        m.old.nodes[ci].XID,
				FromParent: o.XID,
				FromPos:    int(m.old.childPos[ci]),
				ToParent:   n.XID,
				ToPos:      int(m.new.childPos[cn]),
			})
		}
	}

	d.NextXID = alloc.Peek()
	if maxXID+1 > d.NextXID {
		d.NextXID = maxXID + 1
	}
	return d.Normalize()
}

// diffAttributes emits attribute operations for a matched element pair.
func (m *matcher) diffAttributes(d *delta.Delta, o, n *dom.Node) {
	if len(o.Attrs) == 0 && len(n.Attrs) == 0 {
		return
	}
	for _, a := range o.Attrs {
		nv, ok := n.Attribute(a.Name)
		switch {
		case !ok:
			d.Ops = append(d.Ops, delta.DeleteAttr{XID: o.XID, Name: a.Name, Old: a.Value})
		case nv != a.Value:
			d.Ops = append(d.Ops, delta.UpdateAttr{XID: o.XID, Name: a.Name, Old: a.Value, New: nv})
		}
	}
	for _, a := range n.Attrs {
		if _, ok := o.Attribute(a.Name); !ok {
			d.Ops = append(d.Ops, delta.InsertAttr{XID: o.XID, Name: a.Name, Value: a.Value})
		}
	}
}

// pruneOld clones an unmatched old subtree, dropping matched
// descendants (they leave via move operations), so the delete op's
// recorded content is exactly what remains at detach time.
func (m *matcher) pruneOld(oi int) *dom.Node {
	o := m.old.nodes[oi]
	c := &dom.Node{Type: o.Type, Name: o.Name, Value: o.Value, XID: o.XID}
	if len(o.Attrs) > 0 {
		c.Attrs = make([]dom.Attr, len(o.Attrs))
		copy(c.Attrs, o.Attrs)
	}
	for pos := range o.Children {
		ci := m.old.child(oi, pos)
		if m.oldToNew[ci] >= 0 {
			continue
		}
		c.Append(m.pruneOld(ci))
	}
	return c
}

// pruneNew clones an unmatched new subtree, dropping matched
// descendants (they arrive via move operations).
func (m *matcher) pruneNew(ni int) *dom.Node {
	n := m.new.nodes[ni]
	c := &dom.Node{Type: n.Type, Name: n.Name, Value: n.Value, XID: n.XID}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]dom.Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for pos := range n.Children {
		ci := m.new.child(ni, pos)
		if m.newToOld[ci] >= 0 {
			continue
		}
		c.Append(m.pruneNew(ci))
	}
	return c
}

func needsXIDs(doc *dom.Node) bool {
	missing := false
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID == 0 {
			missing = true
			return false
		}
		return true
	})
	return missing
}
