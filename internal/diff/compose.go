package diff

import (
	"fmt"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// Compose aggregates a chain of deltas into a single delta with the
// same effect: applying the result to base equals applying the chain
// in order. This is the paper's delta aggregation ("we can aggregate
// and inverse deltas"), implemented through the persistent
// identification: the chain is replayed on a scratch copy, the XIDs
// shared between the base and the final version define the matching,
// and the standard delta constructor (with exact move minimization)
// emits the aggregate. Intermediate churn — a node inserted by one
// delta and deleted by a later one, a value updated twice, a subtree
// moved repeatedly — collapses away.
//
// base must be the document the first delta applies to (XIDs
// consistent with it); base itself is not modified.
func Compose(base *dom.Node, deltas ...*delta.Delta) (*delta.Delta, error) {
	if base == nil || base.Type != dom.Document {
		return nil, fmt.Errorf("diff: compose needs the base Document")
	}
	if needsXIDs(base) {
		xid.Assign(base)
	}
	final := base.Clone()
	for i, d := range deltas {
		if err := delta.Apply(final, d); err != nil {
			return nil, fmt.Errorf("diff: compose: delta %d: %w", i+1, err)
		}
	}
	// Matching by persistent identity: a node survives the chain iff
	// its XID appears in the final version.
	byXID := make(map[int64]*dom.Node, final.Size())
	dom.WalkPre(final, func(n *dom.Node) bool {
		if n.XID != 0 {
			byXID[n.XID] = n
		}
		return true
	})
	pairs := make(map[*dom.Node]*dom.Node)
	dom.WalkPre(base, func(o *dom.Node) bool {
		if n := byXID[o.XID]; n != nil {
			pairs[o] = n
		}
		return true
	})
	// Exact intra-parent move minimization: the aggregate should be at
	// least as small as the chain it replaces. keepNewXIDs makes the
	// aggregate assign the same identifiers the chain did.
	return FromMatching(base, final, pairs, Options{LISWindow: -1, DisableIDAttributes: true, keepNewXIDs: true})
}
