package diff

import (
	"fmt"
	"time"

	"xydiff/internal/dom"
	"xydiff/internal/sftm"
)

// diffSFTM is the MatcherSFTM arm of DiffDetailed: the sftm package
// computes the matching, and the result flows through exactly the
// machinery FromMatching uses — compatibility filter, then the shared
// Phase 5 delta construction — so deltas, Apply, XID assignment and
// storage behave identically for both matchers.
//
// Timings map onto the BULD phases: Phase2 is tree annotation, Phase3
// the SFTM pipeline (tokenize/index/propagate/greedy), Phase5 delta
// construction. Phases 1 and 4 have no SFTM counterpart and stay zero.
//
// The SFTM pipeline itself is sequential: Workers only parallelizes
// tree annotation, which never changes what is computed, so the delta
// is bit-identical for every worker count — same invariant as BULD.
func diffSFTM(oldDoc, newDoc *dom.Node, opts Options) (*Result, error) {
	r := Result{Matcher: MatcherSFTM}
	workers := opts.workers()

	start := time.Now()
	var oldT, newT *tree
	if workers > 1 {
		trees := [2]**tree{&oldT, &newT}
		docs := [2]*dom.Node{oldDoc, newDoc}
		share := [2]int{(workers + 1) / 2, workers / 2}
		runParallel(2, 2, func(k int) {
			*trees[k] = newTree(docs[k], share[k], opts.done)
		})
	} else {
		oldT = newTree(oldDoc, 1, opts.done)
		newT = newTree(newDoc, 1, opts.done)
	}
	defer oldT.release()
	defer newT.release()
	m := matcherFromPool(oldT, newT, opts, workers)
	defer m.release()
	r.Timings.Phase2 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	pairs, err := sftm.Match(oldDoc, newDoc, sftm.Options{})
	if err != nil {
		return nil, fmt.Errorf("diff: sftm matcher: %w", err)
	}
	m.setMatch(oldT.root(), newT.root())
	oldIdx := indexOf(oldT)
	newIdx := indexOf(newT)
	for o, n := range pairs {
		oi, ok := oldIdx[o]
		if !ok {
			return nil, fmt.Errorf("diff: sftm matching references a node outside the old document")
		}
		ni, ok := newIdx[n]
		if !ok {
			return nil, fmt.Errorf("diff: sftm matching references a node outside the new document")
		}
		if m.compatible(oi, ni) {
			m.setMatch(oi, ni)
		}
	}
	r.Timings.Phase3 = time.Since(start)
	if opts.canceled() {
		return nil, errCanceled
	}

	start = time.Now()
	r.Delta = m.buildDelta()
	r.Timings.Phase5 = time.Since(start)

	r.OldNodes, r.NewNodes = oldT.len(), newT.len()
	for _, ni := range m.oldToNew {
		if ni >= 0 {
			r.MatchedNodes++
		}
	}
	return &r, nil
}

// Matching runs only the matching stage of the selected matcher and
// returns the old→new node pairs, documents excluded. The bench7
// match-quality harness uses it to score precision/recall against
// changesim's ground-truth correspondences without going through delta
// construction.
func Matching(oldDoc, newDoc *dom.Node, opts Options) (map[*dom.Node]*dom.Node, error) {
	if oldDoc == nil || newDoc == nil {
		return nil, fmt.Errorf("diff: nil document")
	}
	if oldDoc.Type != dom.Document || newDoc.Type != dom.Document {
		return nil, fmt.Errorf("diff: arguments must be Document nodes")
	}
	switch opts.matcher() {
	case MatcherSFTM:
		return sftm.Match(oldDoc, newDoc, sftm.Options{})
	case MatcherBULD:
	default:
		return nil, fmt.Errorf("diff: unknown matcher %q", opts.Matcher)
	}

	workers := opts.workers()
	oldT := newTree(oldDoc, workers, opts.done)
	defer oldT.release()
	newT := newTree(newDoc, workers, opts.done)
	defer newT.release()
	m := matcherFromPool(oldT, newT, opts, workers)
	defer m.release()
	m.phase1IDs()
	m.phase3BULD()
	m.phase4Propagate()
	if opts.canceled() {
		return nil, errCanceled
	}
	pairs := make(map[*dom.Node]*dom.Node, newT.len())
	for oi, ni := range m.oldToNew {
		if ni < 0 {
			continue
		}
		o, n := oldT.nodes[oi], newT.nodes[ni]
		if o.Type == dom.Document {
			continue
		}
		pairs[o] = n
	}
	return pairs, nil
}
