package diff_test

import (
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// FuzzSFTMApply is the differential oracle for the SFTM matcher: the
// same Diff→Apply byte-identity contract FuzzDiffApply pins for BULD,
// but with Options.Matcher set to SFTM. Whatever pairs the similarity
// matcher proposes — good, bad, or none — the delta built from them
// must still reproduce the mutated document exactly and survive its
// own XML round-trip. The seed corpus leans on the id-less HTML
// generator, the regime SFTM exists for.
func FuzzSFTMApply(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	seedDocs := []string{
		changesim.HTMLPage(rand.New(rand.NewSource(1)), 2).String(),
		changesim.HTMLPage(rand.New(rand.NewSource(2)), 3).String(),
		changesim.Catalog(rng, 2, 3).String(),
		changesim.Generic(rng, 30, 4, 4).String(),
		`<ul><li>alpha</li><li>alpha</li><li>alpha</li></ul>`,
	}
	seedScripts := [][]byte{
		{},
		{0, 3, 7},
		{1, 2, 5, 2, 4, 0},
		{3, 1, 9, 4, 2, 11, 5, 6, 3},
		{2, 1, 0, 4, 5, 3, 5, 9, 1},
	}
	for i, d := range seedDocs {
		f.Add(d, seedScripts[i%len(seedScripts)])
	}

	f.Fuzz(func(t *testing.T, docXML string, script []byte) {
		if len(docXML) > 8<<10 || len(script) > 256 {
			return
		}
		oldDoc, err := dom.ParseString(docXML)
		if err != nil {
			return
		}
		newDoc := oldDoc.Clone()
		applyScript(newDoc, script)
		mergeAdjacentText(newDoc)
		want := newDoc.String()

		workers := 1 + len(script)%4
		d, err := diff.Diff(oldDoc, newDoc, diff.Options{Matcher: diff.MatcherSFTM, Workers: workers})
		if err != nil {
			t.Fatalf("Diff(sftm): %v", err)
		}
		got, err := delta.ApplyClone(oldDoc, d)
		if err != nil {
			t.Fatalf("Apply: %v\ndelta: %v", err, d)
		}
		if got.String() != want {
			t.Fatalf("sftm Diff→Apply mismatch\nold:  %s\nwant: %s\ngot:  %s", docXML, want, got.String())
		}

		text, err := d.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText: %v", err)
		}
		d2, err := delta.Parse(strings.NewReader(string(text)))
		if err != nil {
			t.Fatalf("reparsing own delta: %v\n%s", err, text)
		}
		got2, err := delta.ApplyClone(oldDoc, d2)
		if err != nil {
			t.Fatalf("applying reparsed delta: %v", err)
		}
		if got2.String() != want {
			t.Fatalf("reparsed sftm delta produced a different document")
		}
	})
}
