package diff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// TestDiffDeepChain exercises recursion depth: a 5000-level chain of
// single-child elements with a change at the bottom.
func TestDiffDeepChain(t *testing.T) {
	depth := 5000
	build := func(leaf string) *dom.Node {
		doc := dom.NewDocument()
		cur := doc
		for i := 0; i < depth; i++ {
			el := dom.NewElement(fmt.Sprintf("d%d", i%7))
			cur.Append(el)
			cur = el
		}
		cur.Append(dom.NewText(leaf))
		return doc
	}
	oldDoc, newDoc := build("bottom"), build("changed")
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatal("deep chain diff broken")
	}
	if c := d.Count(); c.Updates != 1 || c.Total() != 1 {
		t.Errorf("expected exactly one update at the bottom, got %v", c)
	}
}

// TestDiffWideChildList exercises the intra-parent windowed LIS: 3000
// children with a block rotation.
func TestDiffWideChildList(t *testing.T) {
	n := 3000
	build := func(rotate int) *dom.Node {
		doc := dom.NewDocument()
		root := dom.NewElement("r")
		doc.Append(root)
		for i := 0; i < n; i++ {
			el := dom.NewElement("item")
			el.SetAttribute("k", fmt.Sprintf("%d", (i+rotate)%n))
			el.Append(dom.NewText(fmt.Sprintf("content %d", (i+rotate)%n)))
			root.Append(el)
		}
		return doc
	}
	oldDoc, newDoc := build(0), build(25) // rotation by 25 positions
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatal("wide child list diff broken")
	}
	// A rotation by k should cost about k moves (the heavy common run
	// stays put), not O(n).
	if c := d.Count(); c.Moves > 100 || c.Deletes+c.Inserts > 0 {
		t.Errorf("rotation cost too high: %v", c)
	}
}

// TestDiffManyIdenticalSiblings: hundreds of same-label, same-content
// children — the degenerate case for signature matching. Correctness
// must hold and the delta must stay small.
func TestDiffManyIdenticalSiblings(t *testing.T) {
	build := func(extra int) *dom.Node {
		var b strings.Builder
		b.WriteString("<r>")
		for i := 0; i < 400+extra; i++ {
			b.WriteString("<dup><v>same</v></dup>")
		}
		b.WriteString("</r>")
		doc, err := dom.ParseString(b.String())
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	oldDoc, newDoc := build(0), build(3)
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatal("identical-siblings diff broken")
	}
	if c := d.Count(); c.Inserts != 3 || c.Deletes != 0 {
		t.Errorf("expected 3 inserts, got %v", c)
	}
}

// TestDiffLongTextValues: megabyte-scale text nodes must diff as a
// single update, and the log-based text weights must not overflow.
func TestDiffLongTextValues(t *testing.T) {
	big1 := strings.Repeat("lorem ipsum ", 50_000)
	big2 := big1 + "changed"
	oldDoc, _ := dom.ParseString("<r><blob>" + big1 + "</blob><anchor>stable</anchor></r>")
	newDoc, _ := dom.ParseString("<r><blob>" + big2 + "</blob><anchor>stable</anchor></r>")
	d, err := Diff(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := d.Count(); c.Updates != 1 || c.Total() != 1 {
		t.Errorf("counts = %v", c)
	}
}

// TestDiffUnicodeContent: multi-byte labels, attributes and text.
func TestDiffUnicodeContent(t *testing.T) {
	roundTrip(t,
		`<каталог><товар цена="¥1000">фотоаппарат 📷</товар></каталог>`,
		`<каталог><товар цена="¥900">фотоаппарат 📷</товар><товар цена="€5">плёнка</товар></каталог>`,
		Options{})
}

// TestDiffAllNodeTypesChurn mixes every node type under heavy edits.
func TestDiffAllNodeTypesChurn(t *testing.T) {
	roundTrip(t,
		`<r><!--a--><?pi one?><e k="1">text<sub/></e>tail</r>`,
		`<r><?pi two?><e k="2"><sub/>text2</e><!--b-->tail2<new/></r>`,
		Options{})
}

// TestDiffSelfSimilarStructure: recursively self-similar documents
// where every subtree at a given depth is identical.
func TestDiffSelfSimilarStructure(t *testing.T) {
	var build func(depth int) string
	build = func(depth int) string {
		if depth == 0 {
			return "<leaf/>"
		}
		child := build(depth - 1)
		return "<n>" + child + child + "</n>"
	}
	oldXML := "<root>" + build(7) + "</root>" // 2^8-ish identical subtrees
	newXML := "<root>" + build(7) + "<extra/></root>"
	d := roundTrip(t, oldXML, newXML, Options{})
	if c := d.Count(); c.Inserts != 1 || c.Total() != 1 {
		t.Errorf("self-similar diff counts = %v", c)
	}
}

// TestDiffDeterministic: the algorithm must produce byte-identical
// deltas across runs — map iteration order must never leak into the
// output (the store and its on-disk format depend on this).
func TestDiffDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		oldDoc := randomDoc(rng, 80)
		newDoc := oldDoc.Clone()
		mutate(rng, newDoc, 6)
		var first []byte
		for run := 0; run < 5; run++ {
			d, err := Diff(oldDoc.Clone(), newDoc.Clone(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			text, err := d.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				first = text
			} else if string(text) != string(first) {
				t.Fatalf("trial %d: nondeterministic delta:\n%s\nvs\n%s", trial, first, text)
			}
		}
	}
}
