package dtd

import (
	"testing"

	"xydiff/internal/dom"
)

func TestParseDoctypeNoSubset(t *testing.T) {
	ids, err := ParseDoctype(`DOCTYPE catalog SYSTEM "catalog.dtd"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("expected no IDs, got %v", ids)
	}
}

func TestParseDoctypeIDAttr(t *testing.T) {
	ids, err := ParseDoctype(`DOCTYPE catalog [
		<!ELEMENT product (name, price)>
		<!ATTLIST product pid ID #REQUIRED>
		<!ATTLIST product status (new|old) "new">
		<!ATTLIST page url CDATA #IMPLIED key ID #IMPLIED>
	]`)
	if err != nil {
		t.Fatal(err)
	}
	if attr, ok := ids.Lookup("product"); !ok || attr != "pid" {
		t.Errorf("product ID attr = %q,%v, want pid", attr, ok)
	}
	if attr, ok := ids.Lookup("page"); !ok || attr != "key" {
		t.Errorf("page ID attr = %q,%v, want key", attr, ok)
	}
	if _, ok := ids.Lookup("name"); ok {
		t.Error("name should have no ID attr")
	}
}

func TestParseDoctypeFixedAndQuotedDefaults(t *testing.T) {
	ids, err := ParseDoctype(`DOCTYPE d [
		<!ATTLIST e a CDATA #FIXED "x" b ID #IMPLIED c CDATA "dflt">
	]`)
	if err != nil {
		t.Fatal(err)
	}
	if attr, ok := ids.Lookup("e"); !ok || attr != "b" {
		t.Errorf("e ID attr = %q,%v, want b", attr, ok)
	}
}

func TestParseDoctypeDuplicateID(t *testing.T) {
	_, err := ParseDoctype(`DOCTYPE d [
		<!ATTLIST e a ID #IMPLIED>
		<!ATTLIST e b ID #IMPLIED>
	]`)
	if err == nil {
		t.Fatal("expected error for two ID attributes on one element")
	}
}

func TestParseDoctypeSameIDTwiceOK(t *testing.T) {
	ids, err := ParseDoctype(`DOCTYPE d [
		<!ATTLIST e a ID #IMPLIED>
		<!ATTLIST e a ID #REQUIRED>
	]`)
	if err != nil {
		t.Fatal(err)
	}
	if attr, _ := ids.Lookup("e"); attr != "a" {
		t.Errorf("e ID attr = %q, want a", attr)
	}
}

func TestParseDoctypeMalformed(t *testing.T) {
	if _, err := ParseDoctype(`DOCTYPE d [ <!ATTLIST e a ID #IMPLIED`); err == nil {
		t.Error("unterminated subset should error")
	}
	if _, err := ParseDoctype(`DOCTYPE d [ <!ATTLIST e a ID #IMPLIED ]`); err == nil {
		t.Error("unterminated declaration should error")
	}
}

func TestTokenizeEnumerations(t *testing.T) {
	toks := tokenize(`e kind (a|b c|d) "x y" rest`)
	want := []string{"e", "kind", "(a|b c|d)", `"x y"`, "rest"}
	if len(toks) != len(want) {
		t.Fatalf("tokenize = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestDoctypeFlowsThroughDOM(t *testing.T) {
	doc, err := dom.ParseString(`<!DOCTYPE catalog [
		<!ATTLIST product pid ID #REQUIRED>
	]>
	<catalog><product pid="p1"/></catalog>`)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := ParseDoctype(doc.Doctype)
	if err != nil {
		t.Fatal(err)
	}
	if attr, ok := ids.Lookup("product"); !ok || attr != "pid" {
		t.Errorf("ID attrs via DOM = %v", ids)
	}
}
