// Package dtd implements the minimal DTD subset the diff algorithm
// needs: discovering which attributes are declared with type ID
// (Phase 1 of the BULD algorithm matches nodes on ID attribute values).
//
// The parser understands internal DTD subsets of the form
//
//	<!DOCTYPE catalog [
//	    <!ELEMENT product (name, price)>
//	    <!ATTLIST product pid ID #REQUIRED>
//	]>
//
// ELEMENT, ENTITY and NOTATION declarations are tolerated and skipped;
// only ATTLIST declarations contribute information.
package dtd

import (
	"fmt"
	"strings"
	"unicode"
)

// IDAttrs maps an element name to the name of its ID-typed attribute.
// XML allows at most one ID attribute per element type.
type IDAttrs map[string]string

// Lookup returns the ID attribute declared for the element, if any.
func (ia IDAttrs) Lookup(element string) (string, bool) {
	attr, ok := ia[element]
	return attr, ok
}

// ParseDoctype extracts ID attribute declarations from the body of a
// <!DOCTYPE ...> directive (the text between "<!" and ">", as Go's
// encoding/xml delivers an xml.Directive). Documents without an
// internal subset yield an empty, non-nil map.
func ParseDoctype(directive string) (IDAttrs, error) {
	ids := IDAttrs{}
	open := strings.IndexByte(directive, '[')
	if open < 0 {
		return ids, nil // external subset or bare DOCTYPE: nothing to scan
	}
	close := strings.LastIndexByte(directive, ']')
	if close < open {
		return nil, fmt.Errorf("dtd: unterminated internal subset")
	}
	return parseSubset(directive[open+1 : close])
}

// parseSubset scans the internal subset for ATTLIST declarations.
func parseSubset(s string) (IDAttrs, error) {
	ids := IDAttrs{}
	for i := 0; i < len(s); {
		if s[i] != '<' {
			i++
			continue
		}
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			return nil, fmt.Errorf("dtd: unterminated declaration near %q", clip(s[i:]))
		}
		decl := s[i : i+end+1]
		i += end + 1
		if strings.HasPrefix(decl, "<!ATTLIST") {
			if err := parseAttlist(decl, ids); err != nil {
				return nil, err
			}
		}
	}
	return ids, nil
}

// parseAttlist handles one <!ATTLIST elem attr TYPE default ...>
// declaration, possibly declaring several attributes.
func parseAttlist(decl string, ids IDAttrs) error {
	body := strings.TrimSuffix(strings.TrimPrefix(decl, "<!ATTLIST"), ">")
	fields := tokenize(body)
	if len(fields) < 1 {
		return fmt.Errorf("dtd: empty ATTLIST")
	}
	element := fields[0]
	rest := fields[1:]
	// Attributes come in (name, type, default[, value]) groups; the
	// default may be #REQUIRED/#IMPLIED/#FIXED "v"/"v".
	for i := 0; i+1 < len(rest); {
		name, typ := rest[i], rest[i+1]
		i += 2
		// Skip enumerated types "(a|b|c)" — tokenize keeps them whole.
		if strings.EqualFold(typ, "ID") {
			if prev, dup := ids[element]; dup && prev != name {
				return fmt.Errorf("dtd: element %s declares two ID attributes (%s, %s)", element, prev, name)
			}
			ids[element] = name
		}
		// Consume the default declaration.
		if i < len(rest) {
			switch {
			case rest[i] == "#REQUIRED" || rest[i] == "#IMPLIED":
				i++
			case rest[i] == "#FIXED":
				i += 2 // #FIXED "value"
			case isQuoted(rest[i]):
				i++
			}
		}
	}
	return nil
}

// tokenize splits a declaration body into fields, keeping quoted
// strings and parenthesized enumerations as single tokens.
func tokenize(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '"' || r == '\'':
			q := s[i]
			j := i + 1
			for j < len(s) && s[j] != q {
				j++
			}
			if j < len(s) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		case r == '(':
			depth := 0
			j := i
			for ; j < len(s); j++ {
				if s[j] == '(' {
					depth++
				} else if s[j] == ')' {
					depth--
					if depth == 0 {
						j++
						break
					}
				}
			}
			out = append(out, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out
}

func isQuoted(s string) bool {
	return len(s) >= 2 && (s[0] == '"' || s[0] == '\'')
}

func clip(s string) string {
	if len(s) > 30 {
		return s[:30] + "..."
	}
	return s
}
