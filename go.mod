module xydiff

go 1.22
