#!/bin/sh
# scripts/benchdiff.sh — the benchmark-regression gate.
#
# Runs the bench5 (diff core), bench6 (storage engine), bench7
# (matcher comparison) and bench8 (optimality ratio) experiments and
# compares each fresh report against its committed baseline
# (BENCH_5.json … BENCH_8.json). The tolerances live in internal/bench
# (Bench5Report.Compare … Bench8Report.Compare) and are deliberately
# coarse — 3x on time, 1.5x on allocation rates, +0.15 on
# delta-quality and optimality ratios, byte-identical deltas across
# worker counts, 3x on fsyncs-per-Put with an absolute
# never-one-fsync-per-Put floor, -0.03 on match precision/recall with
# the absolute requirement that SFTM beats BULD-without-IDs on the
# id-less HTML corpus, and the absolute requirement that no computed
# delta ever costs less than the optdelta oracle's proven optimum — so
# the gate catches gross regressions on any hardware without flaking
# on load noise.
#
# Usage:
#   scripts/benchdiff.sh           full-size runs against the baselines
#   scripts/benchdiff.sh -quick    smaller workloads (the check.sh smoke)
#
# Regenerate the baselines after an intentional perf change with:
#   make bench-json bench-json6 bench-json7 bench-json8
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
BASELINE=${BASELINE:-BENCH_5.json}
BASELINE6=${BASELINE6:-BENCH_6.json}
BASELINE7=${BASELINE7:-BENCH_7.json}
BASELINE8=${BASELINE8:-BENCH_8.json}

if [ ! -f "$BASELINE" ]; then
    echo "benchdiff: no baseline at $BASELINE (generate one with 'make bench-json')" >&2
    exit 1
fi
if [ ! -f "$BASELINE6" ]; then
    echo "benchdiff: no baseline at $BASELINE6 (generate one with 'make bench-json6')" >&2
    exit 1
fi
if [ ! -f "$BASELINE7" ]; then
    echo "benchdiff: no baseline at $BASELINE7 (generate one with 'make bench-json7')" >&2
    exit 1
fi
if [ ! -f "$BASELINE8" ]; then
    echo "benchdiff: no baseline at $BASELINE8 (generate one with 'make bench-json8')" >&2
    exit 1
fi

QUICK=""
if [ "${1:-}" = "-quick" ]; then
    QUICK="-quick"
fi

$GO run ./cmd/xybench $QUICK -compare "$BASELINE" bench5
$GO run ./cmd/xybench $QUICK -compare "$BASELINE6" bench6
$GO run ./cmd/xybench $QUICK -compare "$BASELINE7" bench7
$GO run ./cmd/xybench $QUICK -compare "$BASELINE8" bench8
