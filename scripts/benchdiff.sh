#!/bin/sh
# scripts/benchdiff.sh — the benchmark-regression gate.
#
# Runs the bench5 experiment and compares the fresh report against the
# committed baseline (BENCH_5.json). The tolerances live in
# internal/bench (Bench5Report.Compare) and are deliberately coarse —
# 3x on time, 1.5x on allocation rates, +0.15 on delta-quality ratios,
# byte-identical deltas across worker counts — so the gate catches
# gross regressions on any hardware without flaking on load noise.
#
# Usage:
#   scripts/benchdiff.sh           full-size run against BENCH_5.json
#   scripts/benchdiff.sh -quick    fewer repetitions (the check.sh smoke)
#
# Regenerate the baseline after an intentional perf change with:
#   make bench-json
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
BASELINE=${BASELINE:-BENCH_5.json}

if [ ! -f "$BASELINE" ]; then
    echo "benchdiff: no baseline at $BASELINE (generate one with 'make bench-json')" >&2
    exit 1
fi

QUICK=""
if [ "${1:-}" = "-quick" ]; then
    QUICK="-quick"
fi

$GO run ./cmd/xybench $QUICK -compare "$BASELINE" bench5
