#!/bin/sh
# scripts/check.sh — the full pre-PR gate as one standalone script
# (the same sequence `make check` runs, usable where make is absent).
#
# Order, cheapest signal first:
#   1. build       every package compiles
#   2. go vet      the toolchain's own analyzers
#   3. xyvet       the repo's domain analyzers (internal/analysis);
#                  any diagnostic is a hard failure
#   4. race tests  the whole suite under -race, including the
#                  concurrent Put/Diff/Subscribe stress test
#   5. fuzz smoke  every fuzzer briefly (FUZZTIME, default 10s)
#   6. load smoke  storage load harness: 64 concurrent writers must
#                  amortize to < 0.1 fsyncs per acknowledged Put
#   7. scrub smoke  bit-rot round-trip: a flipped bit in a sealed
#                  segment is detected and repaired byte-identically
#                  in one scrub cycle
#   8. match smoke  SFTM match quality on the id-less changesim HTML
#                  corpus: absolute precision/recall floors plus
#                  beating BULD-without-IDs on both axes
#   9. xpath smoke  differential XPath harness: 6000 generated
#                  query×document pairs, xpathlite vs the naive
#                  evaluator, zero divergences tolerated
#  10. bench smoke quick bench5–bench8 runs compared against the
#                  committed BENCH_5.json … BENCH_8.json with coarse
#                  tolerances (3x time, 1.5x allocations, +0.15
#                  quality/optimality ratio, identical deltas, 3x
#                  fsyncs-per-Put, -0.03 match precision/recall, and
#                  no delta ever under the proven optimum)
#
# Exits nonzero on the first failing step.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
FUZZTIME=${FUZZTIME:-10s}

echo "==> build"
$GO build ./...

echo "==> go vet"
$GO vet ./...

echo "==> xyvet"
$GO run ./cmd/xyvet ./...

echo "==> go test -race"
$GO test -race ./...

echo "==> fuzz smoke (${FUZZTIME} per fuzzer)"
$GO test ./internal/dom -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"
$GO test ./internal/htmlize -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"
$GO test ./internal/xpathlite -run '^$' -fuzz '^FuzzCompile$' -fuzztime "$FUZZTIME"
$GO test ./internal/delta -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME"
$GO test ./internal/delta -run '^$' -fuzz '^FuzzApply$' -fuzztime "$FUZZTIME"
$GO test ./internal/diff -run '^$' -fuzz '^FuzzDiffApply$' -fuzztime "$FUZZTIME"
$GO test ./internal/diff -run '^$' -fuzz '^FuzzSFTMApply$' -fuzztime "$FUZZTIME"
$GO test ./internal/xptest -run '^$' -fuzz '^FuzzXPathDifferential$' -fuzztime "$FUZZTIME"
$GO test ./internal/xptest -run '^$' -fuzz '^FuzzXPathDifferentialRaw$' -fuzztime "$FUZZTIME"
$GO test ./internal/optdelta -run '^$' -fuzz '^FuzzOptDeltaSound$' -fuzztime "$FUZZTIME"

echo "==> load smoke"
$GO run ./cmd/xyload -assert-fsync-ratio 0.1

echo "==> scrub smoke"
$GO test ./internal/vstore -run '^TestScrubRepairsCorruptSealedSegment$' -count=1
$GO test ./cmd/xystore -run '^TestScrubCommand' -count=1

echo "==> match smoke"
$GO test ./internal/changesim -run '^TestSFTMQualityOnHTMLCorpus$' -count=1 -v

echo "==> xpath smoke"
$GO test ./internal/xptest -run '^TestXPathDifferentialSeeded$' -count=1 -v

echo "==> bench smoke"
./scripts/benchdiff.sh -quick

echo "==> check clean"
