// Package xydiff is a Go implementation of the XyDiff algorithm from
// "Detecting Changes in XML Documents" (Cobéna, Abiteboul, Marian;
// ICDE 2002): a quasi-linear-time diff for XML trees that detects
// insertions, deletions, updates, attribute changes and — unusually for
// tree diffs — subtree moves, and represents them as completed,
// invertible deltas addressed by persistent node identifiers (XIDs).
//
// # Quick start
//
//	oldDoc, _ := xydiff.ParseString(`<cat><p>old</p></cat>`)
//	newDoc, _ := xydiff.ParseString(`<cat><p>new</p></cat>`)
//	d, _ := xydiff.Diff(oldDoc, newDoc)
//	fmt.Print(d)                        // human-readable ops
//	xml, _ := d.MarshalText()           // the delta as an XML document
//	v2, _ := xydiff.ApplyClone(oldDoc, d)          // == newDoc
//	inv, _ := d.Invert()
//	v1, _ := xydiff.ApplyClone(v2, inv)            // == oldDoc
//
// The facade re-exports the building blocks; richer APIs live in the
// internal packages: internal/diff (the BULD algorithm and options),
// internal/delta (the change model), internal/store (a versioned
// repository), internal/alert (delta subscriptions), and
// internal/changesim (the paper's change simulator).
package xydiff

import (
	"io"

	"xydiff/internal/alert"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
	"xydiff/internal/htmlize"
	"xydiff/internal/merge"
	"xydiff/internal/warehouse"
	"xydiff/internal/xpathlite"
)

// Node is one node of an ordered XML tree; Document nodes wrap whole
// documents. See internal/dom for the full API.
type Node = dom.Node

// Delta is a set of change operations between two document versions.
type Delta = delta.Delta

// Op is one elementary change operation.
type Op = delta.Op

// Options tune the diff; the zero value reproduces the paper's
// configuration.
type Options = diff.Options

// Result is the detailed diff outcome, with per-phase timings.
type Result = diff.Result

// Parse reads an XML document.
func Parse(r io.Reader) (*Node, error) { return dom.Parse(r) }

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return dom.ParseString(s) }

// ParseFile parses the XML document stored at path.
func ParseFile(path string) (*Node, error) { return domio.ParseFile(path) }

// Equal reports whether two trees are isomorphic (attribute order
// ignored, child order significant).
func Equal(a, b *Node) bool { return dom.Equal(a, b) }

// Diff computes the completed delta that transforms oldDoc into
// newDoc using the BULD algorithm. Persistent identifiers are assigned
// as a side effect: oldDoc receives post-order XIDs if it has none, and
// newDoc's nodes inherit XIDs through the matching.
func Diff(oldDoc, newDoc *Node, opts ...Options) (*Delta, error) {
	return diff.Diff(oldDoc, newDoc, first(opts))
}

// DiffDetailed is Diff plus per-phase timings and matching statistics.
func DiffDetailed(oldDoc, newDoc *Node, opts ...Options) (*Result, error) {
	return diff.DiffDetailed(oldDoc, newDoc, first(opts))
}

// Apply transforms doc in place by the delta. XIDs on doc must be
// consistent with the delta (documents coming out of Diff, or given
// canonical post-order XIDs, are).
func Apply(doc *Node, d *Delta) error { return delta.Apply(doc, d) }

// ApplyClone applies the delta to a deep copy of doc and returns it.
func ApplyClone(doc *Node, d *Delta) (*Node, error) { return delta.ApplyClone(doc, d) }

// ParseDelta reads a delta from its XML serialization.
func ParseDelta(r io.Reader) (*Delta, error) { return delta.Parse(r) }

// ParseDeltaString reads a delta from a string.
func ParseDeltaString(s string) (*Delta, error) { return delta.ParseString(s) }

func first(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// ParseHTML converts HTML text into a well-formed XML document tree
// ("XMLizing", paper Section 1), ready for Diff.
func ParseHTML(html string) *Node { return htmlize.Parse(html) }

// Compose aggregates a chain of deltas into a single equivalent delta
// against the base document (the paper's delta aggregation).
func Compose(base *Node, deltas ...*Delta) (*Delta, error) {
	return diff.Compose(base, deltas...)
}

// MergeResult is the outcome of a three-way synchronization merge.
type MergeResult = merge.Result

// MergeConflict reports a colliding operation found during Merge.
type MergeConflict = merge.Conflict

// Merge reconciles two deltas computed independently against the same
// base document (offline synchronization, paper Section 2). ours wins
// conflicts; the result lists them.
func Merge(base *Node, ours, theirs *Delta) (*MergeResult, error) {
	return merge.ThreeWay(base, ours, theirs)
}

// Warehouse is the integrated change-control pipeline of the paper's
// Figure 1: repository + diff + alerter + full-text index + statistics.
type Warehouse = warehouse.Warehouse

// NewWarehouse returns an empty warehouse.
func NewWarehouse(opts ...Options) *Warehouse { return warehouse.New(first(opts)) }

// Subscription describes a pattern of interest over deltas for the
// warehouse's alerter.
type Subscription = alert.Subscription

// Alert reports a delta operation matching a subscription.
type Alert = alert.Alert

// Query is a compiled path expression (an XPath subset) usable against
// documents, past versions and delta documents.
type Query = xpathlite.Expr

// CompileQuery compiles a path expression such as
// //Product[Price>500]/Name.
func CompileQuery(src string) (*Query, error) { return xpathlite.Compile(src) }

// MustCompileQuery is CompileQuery, panicking on error.
func MustCompileQuery(src string) *Query { return xpathlite.MustCompile(src) }
