// Benchmarks regenerating the paper's tables and figures. Each bench
// mirrors one experiment of Section 6 (see DESIGN.md's experiment
// index); custom metrics carry the quantities the figures plot, so a
// plain `go test -bench=. -benchmem` reproduces every series. The
// xybench command prints the same data as tables.
package xydiff_test

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xydiff/internal/baseline"
	"xydiff/internal/bench"
	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/index"
	"xydiff/internal/server"
	"xydiff/internal/store"
	"xydiff/internal/textdiff"
	"xydiff/internal/xid"
)

// preparePair builds a (old, new) document pair of roughly the given
// serialized size with the paper's standard 10% change mix.
func preparePair(b *testing.B, bytes int, seed int64) (*dom.Node, *dom.Node) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	oldDoc := changesim.CatalogOfSize(rng, bytes)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed))
	if err != nil {
		b.Fatal(err)
	}
	return oldDoc, sim.New
}

// BenchmarkFig4_PhaseTimes is Figure 4: per-phase time across document
// sizes. The phases are reported as custom metrics (ns per phase per
// diff) alongside the standard ns/op for the whole diff.
func BenchmarkFig4_PhaseTimes(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			oldDoc, newDoc := preparePair(b, size, 4)
			var p12, p3, p4, p5 int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := diff.DiffDetailed(oldDoc.Clone(), newDoc.Clone(), diff.Options{})
				if err != nil {
					b.Fatal(err)
				}
				p12 += (r.Timings.Phase1 + r.Timings.Phase2).Nanoseconds()
				p3 += r.Timings.Phase3.Nanoseconds()
				p4 += r.Timings.Phase4.Nanoseconds()
				p5 += r.Timings.Phase5.Nanoseconds()
			}
			n := float64(b.N)
			b.ReportMetric(float64(p12)/n, "ns/phase1+2")
			b.ReportMetric(float64(p3)/n, "ns/phase3")
			b.ReportMetric(float64(p4)/n, "ns/phase4")
			b.ReportMetric(float64(p5)/n, "ns/phase5")
		})
	}
}

// BenchmarkFig5_Quality is Figure 5: size of the computed delta
// relative to the change simulator's perfect delta, across change
// rates. The ratio is the figure's y-axis.
func BenchmarkFig5_Quality(b *testing.B) {
	for _, rate := range []float64{0.05, 0.10, 0.30, 0.50} {
		b.Run(fmt.Sprintf("rate=%.2f", rate), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			oldDoc := changesim.CatalogOfSize(rng, 30_000)
			sim, err := changesim.Simulate(oldDoc, changesim.Uniform(rate, 5))
			if err != nil {
				b.Fatal(err)
			}
			perfect := sim.Perfect.Size()
			var computed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
				if err != nil {
					b.Fatal(err)
				}
				computed = d.Size()
			}
			b.ReportMetric(float64(computed), "deltaB")
			b.ReportMetric(float64(perfect), "perfectB")
			b.ReportMetric(float64(computed)/float64(perfect), "ratio")
		})
	}
}

// BenchmarkFig6_UnixDiffRatio is Figure 6: delta size over Unix diff
// size on web-like documents of increasing size.
func BenchmarkFig6_UnixDiffRatio(b *testing.B) {
	for _, size := range []int{2_000, 20_000, 200_000} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			oldDoc, newDoc := preparePair(b, size, 6)
			oldText, newText := pretty(oldDoc.String()), pretty(newDoc.String())
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), diff.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if unix := textdiff.Size(oldText, newText); unix > 0 {
					ratio = float64(d.Size()) / float64(unix)
				}
			}
			b.ReportMetric(ratio, "delta/unixdiff")
		})
	}
}

// BenchmarkSiteSnapshot is the Section 6.2 experiment: diffing two
// snapshots of a whole web site. The default page count keeps the bench
// quick; xybench -full site runs the paper's 14000-page scale.
func BenchmarkSiteSnapshot(b *testing.B) {
	oldDoc, newDoc, err := changesim.SiteSnapshotPair(7, 2_000)
	if err != nil {
		b.Fatal(err)
	}
	size := len(oldDoc.String())
	var coreNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := diff.DiffDetailed(oldDoc.Clone(), newDoc.Clone(), diff.Options{})
		if err != nil {
			b.Fatal(err)
		}
		coreNS += (r.Timings.Phase3 + r.Timings.Phase4).Nanoseconds()
	}
	b.ReportMetric(float64(size), "docB")
	b.ReportMetric(float64(coreNS)/float64(b.N), "ns/core")
}

// BenchmarkVsBaselines is the state-of-the-art comparison (Section 3):
// BULD against the Selkow-variant tree edit distance, the LaDiff-style
// matcher, and the DiffMK-style list diff, at growing node counts. The
// ns/op curves exhibit the quasi-linear vs quadratic split the paper
// argues.
func BenchmarkVsBaselines(b *testing.B) {
	for _, nodes := range []int{200, 1_000, 4_000} {
		rng := rand.New(rand.NewSource(int64(nodes)))
		oldDoc := changesim.Generic(rng, nodes, 8, 6)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, int64(nodes)))
		if err != nil {
			b.Fatal(err)
		}
		newDoc := sim.New
		b.Run(fmt.Sprintf("algo=buld/n=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), diff.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("algo=luselkow/n=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.LuSelkow(oldDoc.Clone(), newDoc.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("algo=ladiff/n=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.LaDiff(oldDoc.Clone(), newDoc.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("algo=diffmk/n=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.DiffMK(oldDoc, newDoc)
			}
		})
	}
}

// BenchmarkMoveQuality isolates move detection (the Section 6.1
// discussion): a move-heavy change mix, with found vs perfect move
// counts as metrics.
func BenchmarkMoveQuality(b *testing.B) {
	for _, prob := range []float64{0.25, 0.75} {
		b.Run(fmt.Sprintf("moveProb=%.2f", prob), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			oldDoc := changesim.CatalogOfSize(rng, 20_000)
			sim, err := changesim.Simulate(oldDoc, changesim.Params{
				DeleteProb: 0.08, UpdateProb: 0.02, InsertProb: 0.08, MoveProb: prob, Seed: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			var found int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
				if err != nil {
					b.Fatal(err)
				}
				found = d.Count().Moves
			}
			b.ReportMetric(float64(found), "moves")
			b.ReportMetric(float64(sim.Perfect.Count().Moves), "perfectMoves")
		})
	}
}

// BenchmarkAblation measures the design-choice variants DESIGN.md calls
// out: lazy vs eager down-propagation, ID attributes on/off, exact vs
// windowed intra-parent LIS, propagation pass count.
func BenchmarkAblation(b *testing.B) {
	oldDoc, newDoc := preparePair(b, 50_000, 9)
	configs := []struct {
		name string
		opts diff.Options
	}{
		{"paper-default", diff.Options{}},
		{"eager-down", diff.Options{EagerDown: true}},
		{"no-id-attrs", diff.Options{DisableIDAttributes: true}},
		{"lis-exact", diff.Options{LISWindow: -1}},
		{"passes-3", diff.Options{PropagationPasses: 3}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				d, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = d.Size()
			}
			b.ReportMetric(float64(size), "deltaB")
		})
	}
}

// BenchmarkChangeSimulator measures the experiment generator itself so
// regressions in the harness are visible.
func BenchmarkChangeSimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	doc := changesim.CatalogOfSize(rng, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := changesim.Simulate(doc, changesim.Uniform(0.10, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessRunners exercises the bench-package runners end to
// end at small scale, keeping xybench's code paths measured and honest.
func BenchmarkHarnessRunners(b *testing.B) {
	b.Run("fig4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Fig4([]int{5_000}, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Fig5(5_000, []float64{0.1}, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.Fig6(3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func pretty(xml string) string {
	out := make([]byte, 0, len(xml)+len(xml)/8)
	for i := 0; i < len(xml); i++ {
		out = append(out, xml[i])
		if xml[i] == '>' {
			out = append(out, '\n')
		}
	}
	return string(out)
}

// BenchmarkIndexMaintenance supports the Section 2 "Indexing"
// motivation: maintaining the full-text index from a delta vs
// re-indexing the document.
func BenchmarkIndexMaintenance(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	oldDoc := changesim.Catalog(rng, 10, 40)
	xid.Assign(oldDoc)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.05, 11))
	if err != nil {
		b.Fatal(err)
	}
	d, err := diff.Diff(oldDoc, sim.New, diff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ix := index.New()
			ix.AddDocument("doc", oldDoc)
			b.StartTimer()
			ix.ApplyDelta("doc", d)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := index.New()
			ix.AddDocument("doc", sim.New)
		}
	})
}

// BenchmarkServerPut measures the xydiffd ingest path end to end: an
// HTTP PUT through the handler stack, worker pool, store, diff, and
// delta storage, using a changesim-generated version chain as the
// workload. ns/op is the full per-version install cost as a client
// would see it against a local listener.
func BenchmarkServerPut(b *testing.B) {
	// Pre-generate a chain of versions so the loop measures only the
	// server, not the simulator.
	rng := rand.New(rand.NewSource(13))
	doc := changesim.CatalogOfSize(rng, 20_000)
	versions := []string{doc.String()}
	for step := 0; step < 8; step++ {
		sim, err := changesim.Simulate(doc, changesim.Uniform(0.10, int64(step)))
		if err != nil {
			b.Fatal(err)
		}
		doc = sim.New
		versions = append(versions, doc.String())
	}

	srv := server.New(store.New(diff.Options{}), server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.SetBytes(int64(len(versions[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := versions[i%len(versions)]
		req, err := http.NewRequest("PUT", ts.URL+"/docs/bench", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			b.Fatalf("PUT: %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(srv.Metrics().DiffCount())/float64(b.N), "diffs/op")
}

// BenchmarkServerPutJournaled is BenchmarkServerPut against a durable
// store: every acknowledged PUT has reached the write-ahead journal
// first. The sub-benchmarks compare the three fsync policies — always
// (an acknowledged version survives power loss), interval (bounded
// loss window, amortized fsyncs) and off (OS-paced flushing) — so the
// durability tax on ingest throughput is a measured number, not a
// guess.
func BenchmarkServerPutJournaled(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	doc := changesim.CatalogOfSize(rng, 20_000)
	versions := []string{doc.String()}
	for step := 0; step < 8; step++ {
		sim, err := changesim.Simulate(doc, changesim.Uniform(0.10, int64(step)))
		if err != nil {
			b.Fatal(err)
		}
		doc = sim.New
		versions = append(versions, doc.String())
	}

	for _, policy := range []store.SyncPolicy{store.SyncAlways, store.SyncInterval, store.SyncOff} {
		b.Run(policy.String(), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), diff.Options{}, store.Durability{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			srv := server.New(st, server.Config{
				Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()

			b.SetBytes(int64(len(versions[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body := versions[i%len(versions)]
				req, err := http.NewRequest("PUT", ts.URL+"/docs/bench", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp, err := client.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 300 {
					b.Fatalf("PUT: %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			ds := st.DurabilityStats()
			b.ReportMetric(float64(ds.Syncs)/float64(b.N), "fsyncs/op")
			b.ReportMetric(float64(ds.AppendedBytes)/float64(b.N), "journalB/op")
		})
	}
}

// BenchmarkDeltaCompose measures chain aggregation (Section 4's delta
// algebra): composing a week of deltas into one.
func BenchmarkDeltaCompose(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	base := changesim.Catalog(rng, 4, 20)
	cur := base
	var chain []*delta.Delta
	for step := 0; step < 5; step++ {
		sim, err := changesim.Simulate(cur, changesim.Uniform(0.05, int64(step)))
		if err != nil {
			b.Fatal(err)
		}
		d, err := diff.Diff(cur, sim.New, diff.Options{})
		if err != nil {
			b.Fatal(err)
		}
		chain = append(chain, d)
		cur = sim.New
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diff.Compose(base, chain...); err != nil {
			b.Fatal(err)
		}
	}
}
