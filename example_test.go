package xydiff_test

import (
	"fmt"
	"log"

	"xydiff"
)

// ExampleDiff reproduces the paper's running example: a product is
// deleted, another inserted, one moved between categories, and a price
// updated — four operations, including the move that distinguishes
// this algorithm from classic tree diffs.
func ExampleDiff() {
	oldDoc, err := xydiff.ParseString(`<Category><Title>Digital Cameras</Title><Discount><Product><Name>tx123</Name><Price>$499</Price></Product></Discount><NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product></NewProducts></Category>`)
	if err != nil {
		log.Fatal(err)
	}
	newDoc, err := xydiff.ParseString(`<Category><Title>Digital Cameras</Title><Discount><Product><Name>zy456</Name><Price>$699</Price></Product></Discount><NewProducts><Product><Name>abc</Name><Price>$899</Price></Product></NewProducts></Category>`)
	if err != nil {
		log.Fatal(err)
	}
	d, err := xydiff.Diff(oldDoc, newDoc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Count())
	// Output: 1 ins, 1 del, 1 upd, 1 mov, 0 attr
}

// ExampleDelta_Invert shows that deltas are completed: the inverse
// transformation is derivable from the delta alone.
func ExampleDelta_Invert() {
	v1, _ := xydiff.ParseString(`<doc><p>one</p></doc>`)
	v2, _ := xydiff.ParseString(`<doc><p>two</p></doc>`)
	d, err := xydiff.Diff(v1, v2)
	if err != nil {
		log.Fatal(err)
	}
	forward, _ := xydiff.ApplyClone(v1, d)
	inv, _ := d.Invert()
	backward, _ := xydiff.ApplyClone(forward, inv)
	fmt.Println(xydiff.Equal(forward, v2), xydiff.Equal(backward, v1))
	// Output: true true
}

// ExampleParseDeltaString round-trips a delta through its XML form —
// the same representation the Xyleme warehouse stored and queried.
func ExampleParseDeltaString() {
	v1, _ := xydiff.ParseString(`<a><b>x</b></a>`)
	v2, _ := xydiff.ParseString(`<a><b>y</b></a>`)
	d, _ := xydiff.Diff(v1, v2)
	text, _ := d.MarshalText()
	fmt.Println(string(text))
	parsed, err := xydiff.ParseDeltaString(string(text))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(parsed.Count())
	// Output:
	// <delta nextxid="5"><update xid="1"><old>x</old><new>y</new></update></delta>
	// 0 ins, 0 del, 1 upd, 0 mov, 0 attr
}

// ExampleParseHTML XMLizes an HTML fragment (unclosed tags and all) so
// web pages can be diffed like XML documents.
func ExampleParseHTML() {
	doc := xydiff.ParseHTML(`<ul><li>one<li>two</ul>`)
	fmt.Println(doc)
	// Output: <ul><li>one</li><li>two</li></ul>
}

// ExampleMerge reconciles two divergent offline edits of the same
// document; the colliding price update is reported as a conflict.
func ExampleMerge() {
	base, _ := xydiff.ParseString(`<shop><price>10</price><stock>5</stock></shop>`)
	alice, _ := xydiff.ParseString(`<shop><price>12</price><stock>5</stock></shop>`)
	bob, _ := xydiff.ParseString(`<shop><price>11</price><stock>4</stock></shop>`)
	dAlice, _ := xydiff.Diff(base, alice)
	dBob, _ := xydiff.Diff(base, bob)
	res, err := xydiff.Merge(base, dAlice, dBob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Doc)
	fmt.Println(len(res.Conflicts), "conflict:", res.Conflicts[0].Kind)
	// Output:
	// <shop><price>12</price><stock>4</stock></shop>
	// 1 conflict: update/update
}

// ExampleCompose aggregates a chain of deltas into one equivalent
// delta; the two successive updates collapse.
func ExampleCompose() {
	v1, _ := xydiff.ParseString(`<n><v>1</v></n>`)
	v2, _ := xydiff.ParseString(`<n><v>2</v></n>`)
	v3, _ := xydiff.ParseString(`<n><v>3</v></n>`)
	d12, _ := xydiff.Diff(v1, v2)
	d23, _ := xydiff.Diff(v2, v3)
	combined, err := xydiff.Compose(v1, d12, d23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(combined)
	// Output: update 1: "1" -> "3"
}
