// Command xydiff computes the changes between two versions of an XML
// document and emits them as a delta — itself an XML document — in the
// style of the Xyleme change-control system.
//
// Usage:
//
//	xydiff [flags] old.xml new.xml
//
// Flags:
//
//	-o file     write the delta to file instead of stdout
//	-stats      print matching statistics and phase timings to stderr
//	-ids e=a    declare attribute a as the ID attribute of element e
//	            (repeatable, comma separated); DTD ATTLIST ID
//	            declarations are honored automatically
//	-no-ids     ignore ID attributes entirely
//	-html       treat inputs as HTML and XMLize them first (paper §1)
//	-matcher m  matching algorithm: buld (the paper's, default) or
//	            sftm (similarity-based flexible matching for real-web
//	            HTML without stable IDs)
//	-verify     re-apply the delta and check it reproduces new.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
	"xydiff/internal/dtd"
	"xydiff/internal/htmlize"
)

func main() {
	out := flag.String("o", "", "write delta to `file` (default stdout)")
	stats := flag.Bool("stats", false, "print statistics to stderr")
	ids := flag.String("ids", "", "explicit ID attributes, `elem=attr[,elem=attr...]`")
	noIDs := flag.Bool("no-ids", false, "disable ID attribute matching")
	html := flag.Bool("html", false, "XMLize HTML inputs before diffing")
	matcher := flag.String("matcher", "", "matching `algorithm`: buld (default) or sftm")
	verify := flag.Bool("verify", false, "verify the delta reproduces the new version")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xydiff [flags] old.xml new.xml\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *out, *ids, *matcher, *noIDs, *html, *stats, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "xydiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath, outPath, ids, matcher string, noIDs, html, stats, verify bool) error {
	oldDoc, err := loadDoc(oldPath, html)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath, html)
	if err != nil {
		return err
	}
	opts := diff.Options{DisableIDAttributes: noIDs}
	opts.Matcher, err = diff.ParseMatcher(matcher)
	if err != nil {
		return err
	}
	if ids != "" {
		opts.IDAttrs, err = parseIDFlag(ids)
		if err != nil {
			return err
		}
	}
	r, err := diff.DiffDetailed(oldDoc, newDoc, opts)
	if err != nil {
		return err
	}
	if verify {
		// Diff assigned XIDs to oldDoc without touching its structure,
		// so it is exactly the document the delta addresses.
		got, err := delta.ApplyClone(oldDoc, r.Delta)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if !dom.Equal(got, newDoc) {
			return fmt.Errorf("verify: delta does not reproduce %s: %s", newPath, dom.Diagnose(got, newDoc))
		}
	}
	if stats {
		c := r.Delta.Count()
		fmt.Fprintf(os.Stderr, "nodes: old=%d new=%d matched=%d\n", r.OldNodes, r.NewNodes, r.MatchedNodes)
		fmt.Fprintf(os.Stderr, "ops: %s (delta %d bytes)\n", c, r.Delta.Size())
		fmt.Fprintf(os.Stderr, "time: p1=%v p2=%v p3=%v p4=%v p5=%v total=%v\n",
			r.Timings.Phase1, r.Timings.Phase2, r.Timings.Phase3,
			r.Timings.Phase4, r.Timings.Phase5, r.Timings.Total())
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := r.Delta.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

func loadDoc(path string, html bool) (*dom.Node, error) {
	if !html {
		return domio.ParseFile(path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return htmlize.Parse(string(raw)), nil
}

func parseIDFlag(s string) (dtd.IDAttrs, error) {
	ids := dtd.IDAttrs{}
	for _, pair := range strings.Split(s, ",") {
		elem, attr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || elem == "" || attr == "" {
			return nil, fmt.Errorf("bad -ids entry %q (want elem=attr)", pair)
		}
		ids[elem] = attr
	}
	return ids, nil
}
