package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesDelta(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.xml", `<r><a>1</a></r>`)
	newPath := write(t, dir, "new.xml", `<r><a>2</a></r>`)
	outPath := filepath.Join(dir, "delta.xml")
	if err := run(oldPath, newPath, outPath, "", "", false, false, false, true); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<update") {
		t.Errorf("delta output = %s", out)
	}
}

func TestRunWithExplicitIDs(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.xml", `<r><p id="1">a</p><p id="2">b</p></r>`)
	newPath := write(t, dir, "new.xml", `<r><p id="2">b</p><p id="1">a</p></r>`)
	outPath := filepath.Join(dir, "delta.xml")
	if err := run(oldPath, newPath, outPath, "p=id", "", false, false, true, true); err != nil {
		t.Fatal(err)
	}
	out, _ := os.ReadFile(outPath)
	if !strings.Contains(string(out), "<move") {
		t.Errorf("expected a move with ID matching:\n%s", out)
	}
}

func TestRunHTMLMode(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "a.html", `<ul><li>one<li>two</ul>`)
	newPath := write(t, dir, "b.html", `<ul><li>one<li>three</ul>`)
	outPath := filepath.Join(dir, "delta.xml")
	if err := run(oldPath, newPath, outPath, "", "", false, true, false, true); err != nil {
		t.Fatal(err)
	}
	out, _ := os.ReadFile(outPath)
	if !strings.Contains(string(out), "three") {
		t.Errorf("html delta = %s", out)
	}
}

func TestRunSFTMMatcher(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "a.html", `<div><h1>News</h1><p>storms reached the coast today</p></div>`)
	newPath := write(t, dir, "b.html", `<div class="main"><h1>News</h1><p>storms reached the coast today</p></div>`)
	outPath := filepath.Join(dir, "delta.xml")
	if err := run(oldPath, newPath, outPath, "", "sftm", false, true, false, true); err != nil {
		t.Fatal(err)
	}
	out, _ := os.ReadFile(outPath)
	if !strings.Contains(string(out), "attr-insert") && !strings.Contains(string(out), "class") {
		t.Errorf("sftm delta = %s", out)
	}
	if err := run(oldPath, newPath, "", "", "nonsense", false, true, false, false); err == nil {
		t.Error("bad -matcher accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.xml", `<r/>`)
	bad := write(t, dir, "bad.xml", `<r>`)
	if err := run(bad, good, "", "", "", false, false, false, false); err == nil {
		t.Error("malformed old accepted")
	}
	if err := run(good, bad, "", "", "", false, false, false, false); err == nil {
		t.Error("malformed new accepted")
	}
	if err := run(filepath.Join(dir, "missing.xml"), good, "", "", "", false, false, false, false); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(good, good, "", "notvalid", "", false, false, false, false); err == nil {
		t.Error("bad -ids accepted")
	}
}

func TestParseIDFlag(t *testing.T) {
	ids, err := parseIDFlag("product=pid, page=url")
	if err != nil {
		t.Fatal(err)
	}
	if ids["product"] != "pid" || ids["page"] != "url" {
		t.Errorf("ids = %v", ids)
	}
	for _, bad := range []string{"", "x", "=y", "x=", "a=b,c"} {
		if _, err := parseIDFlag(bad); err == nil {
			t.Errorf("parseIDFlag(%q) accepted", bad)
		}
	}
}
