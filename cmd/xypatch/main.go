// Command xypatch applies a delta produced by xydiff to an XML
// document — forward to obtain the next version, or reversed (-R) to
// reconstruct the previous one.
//
// Usage:
//
//	xypatch [flags] doc.xml delta.xml
//
// Flags:
//
//	-o file   write the result to file instead of stdout
//	-R        reverse: apply the inverted delta
//
// Deltas address nodes by persistent identifiers (XIDs). A freshly
// parsed document has canonical post-order XIDs — the numbering xydiff
// gives the *old* side of a pair — but later versions do not: matched
// nodes carry their inherited XIDs and inserted nodes carry fresh ones.
// xypatch therefore keeps an XID-map sidecar next to each file it
// writes (doc.xml.xidmap, the post-order XID list of the document, the
// paper's XID-map notion applied to the root). When patching a document
// that has a sidecar, the sidecar is used; otherwise canonical
// post-order numbering is assumed. Reverse application (-R) requires
// the sidecar, because the new version's numbering is never canonical.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
	"xydiff/internal/xid"
)

func main() {
	out := flag.String("o", "", "write result to `file` (default stdout, no sidecar)")
	reverse := flag.Bool("R", false, "apply the delta in reverse")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xypatch [flags] doc.xml delta.xml\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *out, *reverse); err != nil {
		fmt.Fprintln(os.Stderr, "xypatch:", err)
		os.Exit(1)
	}
}

func run(docPath, deltaPath, outPath string, reverse bool) error {
	doc, err := domio.ParseFile(docPath)
	if err != nil {
		return err
	}
	if err := assignXIDs(doc, docPath, reverse); err != nil {
		return err
	}
	f, err := os.Open(deltaPath)
	if err != nil {
		return err
	}
	d, err := delta.Parse(f)
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	if reverse {
		if d, err = d.Invert(); err != nil {
			return err
		}
	}
	if err := delta.Apply(doc, d); err != nil {
		return err
	}
	if outPath == "" {
		if _, err := doc.WriteTo(os.Stdout); err != nil {
			return err
		}
		_, err := fmt.Fprintln(os.Stdout)
		return err
	}
	if err := domio.WriteFile(outPath, doc); err != nil {
		return err
	}
	// Record the result's XID layout so the next patch (or a reverse
	// one) can address it.
	return os.WriteFile(outPath+".xidmap", []byte(xid.Of(doc).String()+"\n"), 0o644)
}

// assignXIDs restores the document's persistent identifiers: from the
// sidecar when present, canonical post-order otherwise.
func assignXIDs(doc *dom.Node, docPath string, reverse bool) error {
	raw, err := os.ReadFile(docPath + ".xidmap")
	switch {
	case err == nil:
		m, err := xid.ParseMap(strings.TrimSpace(string(raw)))
		if err != nil {
			return fmt.Errorf("sidecar %s.xidmap: %w", docPath, err)
		}
		if err := m.ApplyTo(doc); err != nil {
			return fmt.Errorf("sidecar %s.xidmap: %w", docPath, err)
		}
		return nil
	case os.IsNotExist(err):
		if reverse {
			return fmt.Errorf("reverse patching needs %s.xidmap (the new version's XIDs are not canonical); re-create it by applying the forward delta with -o", docPath)
		}
		xid.Assign(doc)
		return nil
	default:
		return err
	}
}
