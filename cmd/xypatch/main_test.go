package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
)

// prepare diffs two documents and writes old.xml and delta.xml.
func prepare(t *testing.T, dir, oldXML, newXML string) (oldPath, deltaPath string, newDoc *dom.Node) {
	t.Helper()
	oldDoc, err := dom.ParseString(oldXML)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err = dom.ParseString(newXML)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldPath = filepath.Join(dir, "old.xml")
	if err := domio.WriteFile(oldPath, oldDoc); err != nil {
		t.Fatal(err)
	}
	deltaPath = filepath.Join(dir, "delta.xml")
	text, _ := d.MarshalText()
	if err := os.WriteFile(deltaPath, text, 0o644); err != nil {
		t.Fatal(err)
	}
	return oldPath, deltaPath, newDoc
}

func TestPatchForwardAndReverse(t *testing.T) {
	dir := t.TempDir()
	oldPath, deltaPath, newDoc := prepare(t, dir,
		`<r><a>1</a><b>x</b></r>`, `<r><b>x</b><a>2</a><c/></r>`)
	patched := filepath.Join(dir, "patched.xml")
	if err := run(oldPath, deltaPath, patched, false); err != nil {
		t.Fatal(err)
	}
	got, err := domio.ParseFile(patched)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatalf("patched differs: %s", dom.Diagnose(got, newDoc))
	}
	// The sidecar must exist and enable reverse patching.
	if _, err := os.Stat(patched + ".xidmap"); err != nil {
		t.Fatal("sidecar missing")
	}
	back := filepath.Join(dir, "back.xml")
	if err := run(patched, deltaPath, back, true); err != nil {
		t.Fatal(err)
	}
	orig, _ := domio.ParseFile(oldPath)
	gotBack, _ := domio.ParseFile(back)
	if !dom.Equal(gotBack, orig) {
		t.Fatalf("reverse patch differs: %s", dom.Diagnose(gotBack, orig))
	}
}

func TestPatchChain(t *testing.T) {
	// v1 -> v2 -> v3 through files, using sidecars for the second hop.
	dir := t.TempDir()
	v1 := `<log><e>1</e></log>`
	v2 := `<log><e>1</e><e>2</e></log>`
	v3 := `<log><e>2</e><e>3</e></log>`
	oldPath, delta12, _ := prepare(t, dir, v1, v2)
	mid := filepath.Join(dir, "v2.xml")
	if err := run(oldPath, delta12, mid, false); err != nil {
		t.Fatal(err)
	}
	// Second delta computed against the sidecar-consistent v2: load it
	// the same way the CLI would.
	v2doc, err := domio.ParseFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := assignXIDs(v2doc, mid, false); err != nil {
		t.Fatal(err)
	}
	v3doc, _ := dom.ParseString(v3)
	d23, err := diff.Diff(v2doc, v3doc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	delta23 := filepath.Join(dir, "d23.xml")
	text, _ := d23.MarshalText()
	os.WriteFile(delta23, text, 0o644)
	out := filepath.Join(dir, "v3.xml")
	if err := run(mid, delta23, out, false); err != nil {
		t.Fatal(err)
	}
	got, _ := domio.ParseFile(out)
	want, _ := dom.ParseString(v3)
	if !dom.Equal(got, want) {
		t.Fatalf("chained patch differs: %s", dom.Diagnose(got, want))
	}
}

func TestReverseWithoutSidecarFails(t *testing.T) {
	dir := t.TempDir()
	oldPath, deltaPath, _ := prepare(t, dir, `<r><a>1</a></r>`, `<r><a>2</a></r>`)
	err := run(oldPath, deltaPath, filepath.Join(dir, "out.xml"), true)
	if err == nil || !strings.Contains(err.Error(), "xidmap") {
		t.Fatalf("expected sidecar error, got %v", err)
	}
}

func TestPatchErrors(t *testing.T) {
	dir := t.TempDir()
	oldPath, deltaPath, _ := prepare(t, dir, `<r><a>1</a></r>`, `<r><a>2</a></r>`)
	if err := run(filepath.Join(dir, "nope.xml"), deltaPath, "", false); err == nil {
		t.Error("missing doc accepted")
	}
	if err := run(oldPath, filepath.Join(dir, "nope.xml"), "", false); err == nil {
		t.Error("missing delta accepted")
	}
	badDelta := filepath.Join(dir, "bad.xml")
	os.WriteFile(badDelta, []byte(`<notadelta/>`), 0o644)
	if err := run(oldPath, badDelta, "", false); err == nil {
		t.Error("bad delta accepted")
	}
	// Corrupt sidecar.
	os.WriteFile(oldPath+".xidmap", []byte("garbage"), 0o644)
	if err := run(oldPath, deltaPath, "", false); err == nil {
		t.Error("corrupt sidecar accepted")
	}
}
