package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nope", benchConfig{seed: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesTables(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "stats", benchConfig{seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "change statistics") {
		t.Errorf("stats output missing header: %s", b.String())
	}
}

func TestRunQuickExperiments(t *testing.T) {
	// Keep only the fast experiments in unit tests; "all" and -full are
	// exercised manually / by the benchmarks.
	for _, name := range []string{"moves", "ablation", "stats"} {
		if err := run(io.Discard, name, benchConfig{seed: 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
