// Command xybench regenerates the paper's experimental tables and
// figures on synthetic workloads (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	xybench [flags] <experiment>
//
// Experiments:
//
//	fig4        per-phase running time vs document size (Figure 4)
//	fig5        delta quality vs the change simulator's perfect delta (Figure 5)
//	fig6        delta size over Unix diff size on a synthetic web corpus (Figure 6)
//	site        the Section 6.2 web-site snapshot diff
//	baselines   BULD vs Lu/Selkow, LaDiff-style and DiffMK-style
//	moves       move-detection quality sweep
//	ablation    design-choice ablations
//	stats       per-label change-frequency statistics (paper §7)
//	all         everything above
//
// Flags:
//
//	-full    run the full-size workloads (several minutes); the default
//	         quick mode keeps every experiment under a few seconds
//	-seed n  random seed (default 1)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xydiff/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run full-size workloads")
	seed := flag.Int64("seed", 1, "random `seed`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xybench [flags] fig4|fig5|fig6|site|baselines|moves|ablation|stats|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *full, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xybench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, experiment string, full bool, seed int64) error {
	runOne := func(name string) error {
		switch name {
		case "fig4":
			sizes := []int{1_000, 5_000, 20_000, 100_000, 500_000}
			if full {
				sizes = append(sizes, 2_000_000, 5_000_000)
			}
			points, err := bench.Fig4(sizes, seed)
			if err != nil {
				return err
			}
			bench.PrintFig4(w, points)
		case "fig5":
			size := 50_000
			if full {
				size = 500_000
			}
			rates := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
			points, err := bench.Fig5(size, rates, seed)
			if err != nil {
				return err
			}
			bench.PrintFig5(w, points)
		case "fig6":
			count := 40
			if full {
				count = 200 // the paper's "about two hundred XML documents"
			}
			points, sum, err := bench.Fig6(count, seed)
			if err != nil {
				return err
			}
			bench.PrintFig6(w, points, sum)
		case "site":
			pages := 2_000
			if full {
				pages = 14_000 // the paper's www.inria.fr scale
			}
			r, err := bench.Site(pages, seed)
			if err != nil {
				return err
			}
			bench.PrintSite(w, r)
		case "baselines":
			counts := []int{100, 300, 1_000, 3_000}
			if full {
				counts = append(counts, 10_000, 30_000)
			}
			points, err := bench.Baselines(counts, seed)
			if err != nil {
				return err
			}
			bench.PrintBaselines(w, points)
		case "moves":
			size := 30_000
			if full {
				size = 200_000
			}
			probs := []float64{0.0, 0.1, 0.25, 0.5, 0.75, 1.0}
			points, err := bench.Moves(size, probs, seed)
			if err != nil {
				return err
			}
			bench.PrintMoves(w, points)
		case "ablation":
			size := 50_000
			if full {
				size = 500_000
			}
			points, err := bench.Ablations(size, seed)
			if err != nil {
				return err
			}
			bench.PrintAblations(w, points)
		case "stats":
			size := 50_000
			weeks := 8
			if full {
				size, weeks = 500_000, 26
			}
			report, err := bench.ChangeStats(size, weeks, seed)
			if err != nil {
				return err
			}
			report.WriteTable(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if experiment == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "site", "baselines", "moves", "ablation", "stats"} {
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return runOne(experiment)
}
