// Command xybench regenerates the paper's experimental tables and
// figures on synthetic workloads (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	xybench [flags] <experiment>
//
// Experiments:
//
//	fig4        per-phase running time vs document size (Figure 4)
//	fig5        delta quality vs the change simulator's perfect delta (Figure 5)
//	fig6        delta size over Unix diff size on a synthetic web corpus (Figure 6)
//	site        the Section 6.2 web-site snapshot diff
//	baselines   BULD vs Lu/Selkow, LaDiff-style and DiffMK-style
//	moves       move-detection quality sweep
//	ablation    design-choice ablations
//	stats       per-label change-frequency statistics (paper §7)
//	bench5      machine-readable perf record: ns/op + B/op per workload,
//	            quality ratios, Workers sweep (see -json / -compare)
//	bench6      machine-readable storage-engine record: group-commit
//	            fsync amortization, Put/reconstruct latency, cache hit
//	            ratio, recovery time (see -json / -compare)
//	bench7      machine-readable matcher comparison on the id-less HTML
//	            corpus: SFTM vs BULD precision/recall, delta sizes,
//	            diff time, SFTM worker sweep (see -json / -compare)
//	bench8      machine-readable optimality-ratio record: BULD, SFTM and
//	            changesim's perfect delta vs the exact optimum on small
//	            trees (optdelta oracle, see -json / -compare)
//	all         everything above except bench5, bench6, bench7 and bench8
//
// Flags:
//
//	-full        run the full-size workloads (several minutes); the default
//	             quick mode keeps every experiment under a few seconds
//	-seed n      random seed (default 1)
//	-workers n   diff.Options.Workers for fig4/site (0 = GOMAXPROCS)
//	-quick       bench5–bench8: smaller workload (the check.sh smoke)
//	-json path   bench5–bench8: write the report to path (- for stdout)
//	-compare p   bench5–bench8: gate the fresh report against a
//	             committed baseline; exit 1 when a tolerance is violated
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xydiff/internal/bench"
	"xydiff/internal/diff"
)

type benchConfig struct {
	full    bool
	seed    int64
	workers int
	quick   bool
	json    string
	compare string
}

func main() {
	var cfg benchConfig
	flag.BoolVar(&cfg.full, "full", false, "run full-size workloads")
	flag.Int64Var(&cfg.seed, "seed", 1, "random `seed`")
	flag.IntVar(&cfg.workers, "workers", 0, "diff `goroutines` for fig4/site (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.quick, "quick", false, "bench5-bench8: smaller workload")
	flag.StringVar(&cfg.json, "json", "", "bench5-bench8: write report to `path` (- for stdout)")
	flag.StringVar(&cfg.compare, "compare", "", "bench5-bench8: compare against baseline report at `path`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xybench [flags] fig4|fig5|fig6|site|baselines|moves|ablation|stats|bench5|bench6|bench7|bench8|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xybench:", err)
		os.Exit(1)
	}
}

// runBench5 measures the report, optionally writes it, optionally gates
// it against a committed baseline.
func runBench5(w io.Writer, cfg benchConfig) error {
	r, err := bench.Bench5(cfg.quick, cfg.seed)
	if err != nil {
		return err
	}
	bench.PrintBench5(w, r)
	if cfg.json != "" {
		if cfg.json == "-" {
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		} else {
			f, err := os.Create(cfg.json)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cfg.compare != "" {
		f, err := os.Open(cfg.compare)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadBench5(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if bad := r.Compare(baseline); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "bench regression:", msg)
			}
			return fmt.Errorf("%d benchmark gate(s) violated (baseline %s)", len(bad), cfg.compare)
		}
		fmt.Fprintf(w, "bench gate: ok against %s\n", cfg.compare)
	}
	return nil
}

// runBench6 runs the storage-engine load harness, optionally writes
// the report, optionally gates it against a committed baseline.
func runBench6(w io.Writer, cfg benchConfig) error {
	r, err := bench.Bench6(cfg.quick, cfg.seed)
	if err != nil {
		return err
	}
	bench.PrintBench6(w, r)
	if cfg.json != "" {
		if cfg.json == "-" {
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		} else {
			f, err := os.Create(cfg.json)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cfg.compare != "" {
		f, err := os.Open(cfg.compare)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadBench6(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if bad := r.Compare(baseline); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "storage bench regression:", msg)
			}
			return fmt.Errorf("%d storage benchmark gate(s) violated (baseline %s)", len(bad), cfg.compare)
		}
		fmt.Fprintf(w, "storage bench gate: ok against %s\n", cfg.compare)
	}
	return nil
}

// runBench7 runs the matcher-comparison experiment, optionally writes
// the report, optionally gates it against a committed baseline.
func runBench7(w io.Writer, cfg benchConfig) error {
	r, err := bench.Bench7(cfg.quick, cfg.seed)
	if err != nil {
		return err
	}
	bench.PrintBench7(w, r)
	if cfg.json != "" {
		if cfg.json == "-" {
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		} else {
			f, err := os.Create(cfg.json)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cfg.compare != "" {
		f, err := os.Open(cfg.compare)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadBench7(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if bad := r.Compare(baseline); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "matcher bench regression:", msg)
			}
			return fmt.Errorf("%d matcher benchmark gate(s) violated (baseline %s)", len(bad), cfg.compare)
		}
		fmt.Fprintf(w, "matcher bench gate: ok against %s\n", cfg.compare)
	}
	return nil
}

// runBench8 runs the optimality-ratio experiment, optionally writes
// the report, optionally gates it against a committed baseline.
func runBench8(w io.Writer, cfg benchConfig) error {
	r, err := bench.Bench8(cfg.quick, cfg.seed)
	if err != nil {
		return err
	}
	bench.PrintBench8(w, r)
	if cfg.json != "" {
		if cfg.json == "-" {
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		} else {
			f, err := os.Create(cfg.json)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cfg.compare != "" {
		f, err := os.Open(cfg.compare)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadBench8(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if bad := r.Compare(baseline); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "optimality bench regression:", msg)
			}
			return fmt.Errorf("%d optimality benchmark gate(s) violated (baseline %s)", len(bad), cfg.compare)
		}
		fmt.Fprintf(w, "optimality bench gate: ok against %s\n", cfg.compare)
	}
	return nil
}

func run(w io.Writer, experiment string, cfg benchConfig) error {
	full, seed := cfg.full, cfg.seed
	opts := diff.Options{Workers: cfg.workers}
	runOne := func(name string) error {
		switch name {
		case "fig4":
			sizes := []int{1_000, 5_000, 20_000, 100_000, 500_000}
			if full {
				sizes = append(sizes, 2_000_000, 5_000_000)
			}
			points, err := bench.Fig4Opts(sizes, seed, opts)
			if err != nil {
				return err
			}
			bench.PrintFig4(w, points)
		case "fig5":
			size := 50_000
			if full {
				size = 500_000
			}
			rates := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
			points, err := bench.Fig5(size, rates, seed)
			if err != nil {
				return err
			}
			bench.PrintFig5(w, points)
		case "fig6":
			count := 40
			if full {
				count = 200 // the paper's "about two hundred XML documents"
			}
			points, sum, err := bench.Fig6(count, seed)
			if err != nil {
				return err
			}
			bench.PrintFig6(w, points, sum)
		case "site":
			pages := 2_000
			if full {
				pages = 14_000 // the paper's www.inria.fr scale
			}
			r, err := bench.SiteOpts(pages, seed, opts)
			if err != nil {
				return err
			}
			bench.PrintSite(w, r)
		case "baselines":
			counts := []int{100, 300, 1_000, 3_000}
			if full {
				counts = append(counts, 10_000, 30_000)
			}
			points, err := bench.Baselines(counts, seed)
			if err != nil {
				return err
			}
			bench.PrintBaselines(w, points)
		case "moves":
			size := 30_000
			if full {
				size = 200_000
			}
			probs := []float64{0.0, 0.1, 0.25, 0.5, 0.75, 1.0}
			points, err := bench.Moves(size, probs, seed)
			if err != nil {
				return err
			}
			bench.PrintMoves(w, points)
		case "ablation":
			size := 50_000
			if full {
				size = 500_000
			}
			points, err := bench.Ablations(size, seed)
			if err != nil {
				return err
			}
			bench.PrintAblations(w, points)
		case "stats":
			size := 50_000
			weeks := 8
			if full {
				size, weeks = 500_000, 26
			}
			report, err := bench.ChangeStats(size, weeks, seed)
			if err != nil {
				return err
			}
			report.WriteTable(w)
		case "bench5":
			return runBench5(w, cfg)
		case "bench6":
			return runBench6(w, cfg)
		case "bench7":
			return runBench7(w, cfg)
		case "bench8":
			return runBench8(w, cfg)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if experiment == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "site", "baselines", "moves", "ablation", "stats"} {
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return runOne(experiment)
}
