package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
)

func TestRunGeneratesAndSimulates(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.xml")
	newPath := filepath.Join(dir, "new.xml")
	deltaPath := filepath.Join(dir, "delta.xml")
	if err := run("", "catalog", 4000, 0.1, 0.1, 0.1, 0.1, 7, oldPath, newPath, deltaPath); err != nil {
		t.Fatal(err)
	}
	oldDoc, err := domio.ParseFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := domio.ParseFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := delta.Parse(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The emitted perfect delta must transform old.xml into new.xml
	// after canonical XID assignment — exactly what xypatch would do.
	if d.Empty() {
		t.Fatal("no changes simulated")
	}
	work := oldDoc.Clone()
	assignPostorder(work)
	if err := delta.Apply(work, d); err != nil {
		t.Fatalf("apply emitted delta: %v", err)
	}
	if !dom.Equal(work, newDoc) {
		t.Fatalf("delta does not connect the emitted files: %s", dom.Diagnose(work, newDoc))
	}
}

func assignPostorder(doc *dom.Node) {
	next := int64(1)
	dom.WalkPost(doc, func(n *dom.Node) bool {
		n.XID = next
		next++
		return true
	})
}

func TestRunAllGenerators(t *testing.T) {
	dir := t.TempDir()
	for _, gen := range []string{"catalog", "addressbook", "site", "generic"} {
		newPath := filepath.Join(dir, gen+"-new.xml")
		deltaPath := filepath.Join(dir, gen+"-delta.xml")
		if err := run("", gen, 2000, 0.05, 0.05, 0.05, 0.05, 3, "", newPath, deltaPath); err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if _, err := domio.ParseFile(newPath); err != nil {
			t.Fatalf("%s output: %v", gen, err)
		}
	}
}

func TestRunWithInputFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.xml")
	os.WriteFile(in, []byte(`<r><a>one</a><b>two</b><c>three</c></r>`), 0o644)
	newPath := filepath.Join(dir, "new.xml")
	deltaPath := filepath.Join(dir, "delta.xml")
	if err := run(in, "", 0, 0.5, 0.5, 0.5, 0.5, 2, "", newPath, deltaPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(newPath); err != nil {
		t.Fatal("new.xml missing")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "unknown-gen", 1000, 0.1, 0.1, 0.1, 0.1, 1,
		"", filepath.Join(dir, "n.xml"), filepath.Join(dir, "d.xml")); err == nil ||
		!strings.Contains(err.Error(), "unknown generator") {
		t.Errorf("unknown generator error = %v", err)
	}
	if err := run(filepath.Join(dir, "missing.xml"), "", 0, 0.1, 0.1, 0.1, 0.1, 1,
		"", filepath.Join(dir, "n.xml"), filepath.Join(dir, "d.xml")); err == nil {
		t.Error("missing input accepted")
	}
}

func TestPick(t *testing.T) {
	if pick(-1, 0.3) != 0.3 || pick(0.7, 0.3) != 0.7 || pick(0, 0.3) != 0 {
		t.Error("pick logic wrong")
	}
}
