// Command changesim is the paper's change simulator (Section 6.1): it
// generates or reads an XML document, applies random edits with
// per-node probabilities, and writes the new version together with the
// perfect delta describing exactly the edits performed.
//
// Usage:
//
//	changesim [flags]
//
// Flags:
//
//	-in file        input document (default: generate one)
//	-gen kind       generator when -in is absent: catalog, addressbook,
//	                site, generic (default catalog)
//	-size bytes     target size of the generated document (default 20000)
//	-p prob         probability for all four operations (default 0.1)
//	-pdel/-pupd/-pins/-pmov   individual probabilities (override -p)
//	-seed n         random seed (default 1)
//	-out-old file   write the (generated) old version
//	-out-new file   write the new version (default new.xml)
//	-out-delta file write the perfect delta (default delta.xml)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"xydiff/internal/changesim"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
)

func main() {
	in := flag.String("in", "", "input `file` (default: generate)")
	gen := flag.String("gen", "catalog", "generator `kind`: catalog, addressbook, site, generic")
	size := flag.Int("size", 20_000, "target size in `bytes` for generated documents")
	p := flag.Float64("p", 0.1, "per-node `probability` for all operations")
	pdel := flag.Float64("pdel", -1, "delete probability (overrides -p)")
	pupd := flag.Float64("pupd", -1, "update probability (overrides -p)")
	pins := flag.Float64("pins", -1, "insert probability (overrides -p)")
	pmov := flag.Float64("pmov", -1, "move probability (overrides -p)")
	seed := flag.Int64("seed", 1, "random `seed`")
	outOld := flag.String("out-old", "", "write the old version to `file`")
	outNew := flag.String("out-new", "new.xml", "write the new version to `file`")
	outDelta := flag.String("out-delta", "delta.xml", "write the perfect delta to `file`")
	flag.Parse()

	if err := run(*in, *gen, *size, pick(*pdel, *p), pick(*pupd, *p), pick(*pins, *p), pick(*pmov, *p),
		*seed, *outOld, *outNew, *outDelta); err != nil {
		fmt.Fprintln(os.Stderr, "changesim:", err)
		os.Exit(1)
	}
}

func pick(override, dflt float64) float64 {
	if override >= 0 {
		return override
	}
	return dflt
}

func run(in, gen string, size int, pdel, pupd, pins, pmov float64, seed int64, outOld, outNew, outDelta string) error {
	var doc *dom.Node
	var err error
	if in != "" {
		doc, err = domio.ParseFile(in)
		if err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		switch gen {
		case "catalog":
			doc = changesim.CatalogOfSize(rng, size)
		case "addressbook":
			doc = changesim.AddressBook(rng, size/150+1)
		case "site":
			doc = changesim.Site(rng, size/350+1)
		case "generic":
			doc = changesim.Generic(rng, size/60+1, 8, 8)
		default:
			return fmt.Errorf("unknown generator %q", gen)
		}
	}
	res, err := changesim.Simulate(doc, changesim.Params{
		DeleteProb: pdel, UpdateProb: pupd, InsertProb: pins, MoveProb: pmov, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simulated: %s (perfect delta: %s, %d bytes)\n",
		res.Stats, res.Perfect.Count(), res.Perfect.Size())
	if outOld != "" {
		if err := domio.WriteFile(outOld, doc); err != nil {
			return err
		}
	}
	if err := domio.WriteFile(outNew, res.New); err != nil {
		return err
	}
	f, err := os.Create(outDelta)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := res.Perfect.WriteTo(f); err != nil {
		return err
	}
	_, err = fmt.Fprintln(f)
	return err
}
