// Command xycrawl is the standalone acquisition layer: it polls
// registered web sources on the adaptive change-rate schedule and feeds
// each fetched version to a running xydiffd over its HTTP API (PUT
// /docs/{id}), completing the paper's pipeline — crawler → repository →
// diff → delta storage → alerter — as two cooperating processes.
// Documents whose origin answers 304 never leave the crawler; only
// changed content costs a PUT (and thus a parse and a diff) on the
// daemon.
//
// Usage:
//
//	xycrawl -add news=https://example.com/feed.xml [flags]
//
//	-target   base URL of the xydiffd to feed (default http://127.0.0.1:8427)
//	-registry source registry file; loaded on start, saved on shutdown
//	          (default xycrawl-sources.json; "" = in-memory only)
//	-add      register source as id=url (repeatable; replaces same id)
//	-min / -max bounds of the adaptive revisit interval (defaults 15s / 1h)
//	-concurrency fetcher pool size (default min(GOMAXPROCS, 8))
//	-fetch-timeout per-fetch deadline (default 10s)
//	-status   how often to log a metrics snapshot (default 1m, 0 = never)
//
// The registry keeps each source's learned interval and HTTP validators
// across restarts, so a restarted crawler revalidates instead of
// re-downloading the world.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xydiff/internal/crawl"
	"xydiff/internal/stats"
)

type config struct {
	target       string
	registry     string
	adds         []string
	min          time.Duration
	max          time.Duration
	concurrency  int
	fetchTimeout time.Duration
	status       time.Duration
	logger       *slog.Logger
}

func main() {
	var cfg config
	flag.StringVar(&cfg.target, "target", "http://127.0.0.1:8427", "base `URL` of the xydiffd to feed")
	flag.StringVar(&cfg.registry, "registry", "xycrawl-sources.json", "source registry `file` (\"\" = in-memory only)")
	flag.Func("add", "register source as `id=url` (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want id=url, got %q", v)
		}
		cfg.adds = append(cfg.adds, v)
		return nil
	})
	flag.DurationVar(&cfg.min, "min", 0, "minimum revisit `interval` (0 = default 15s)")
	flag.DurationVar(&cfg.max, "max", 0, "maximum revisit `interval` (0 = default 1h)")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "fetcher pool size (0 = min(GOMAXPROCS, 8))")
	flag.DurationVar(&cfg.fetchTimeout, "fetch-timeout", 0, "per-fetch `deadline` (0 = default 10s)")
	flag.DurationVar(&cfg.status, "status", time.Minute, "status log `period` (0 = never)")
	flag.Parse()
	cfg.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xycrawl:", err)
		os.Exit(1)
	}
}

// run crawls until ctx is canceled, then saves the registry.
func run(ctx context.Context, cfg config) error {
	if _, err := url.Parse(cfg.target); err != nil {
		return fmt.Errorf("parse -target: %w", err)
	}
	var reg *crawl.Registry
	var err error
	if cfg.registry == "" {
		reg = crawl.NewRegistry()
	} else if reg, err = crawl.OpenRegistry(cfg.registry); err != nil {
		return err
	}

	ing := &daemonIngester{target: strings.TrimSuffix(cfg.target, "/")}
	c := crawl.New(reg, ing.ingest, stats.NewCollector(), crawl.Config{
		MinInterval:  cfg.min,
		MaxInterval:  cfg.max,
		Concurrency:  cfg.concurrency,
		FetchTimeout: cfg.fetchTimeout,
		Logger:       cfg.logger,
	})
	for _, add := range cfg.adds {
		id, u, _ := strings.Cut(add, "=") // shape validated by flag.Func
		src, err := c.Add(crawl.Source{ID: id, URL: u})
		if err != nil {
			return err
		}
		cfg.logger.Info("source registered", "id", src.ID, "url", src.URL)
	}
	if reg.Len() == 0 {
		return fmt.Errorf("no sources: use -add id=url or point -registry at a saved registry")
	}
	cfg.logger.Info("xycrawl starting", "target", cfg.target, "sources", reg.Len())

	if cfg.status > 0 {
		go logStatus(ctx, c, cfg.logger, cfg.status)
	}
	if err := c.Run(ctx); err != nil {
		return err
	}
	if err := reg.Save(); err != nil {
		return fmt.Errorf("saving registry: %w", err)
	}
	snap := c.Metrics().Snapshot()
	cfg.logger.Info("xycrawl stopped",
		"fetches", snap.Fetches, "notModified", snap.NotModified,
		"ingests", snap.Ingests, "failures", snap.Failures)
	return nil
}

// logStatus periodically logs a metrics snapshot until ctx is canceled.
func logStatus(ctx context.Context, c *crawl.Crawler, log *slog.Logger, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s := c.Metrics().Snapshot()
			log.Info("crawl status",
				"sources", s.Sources, "queue", s.QueueDepth,
				"fetches", s.Fetches, "notModified", s.NotModified,
				"ingests", s.Ingests, "retries", s.Retries,
				"failures", s.Failures, "openCircuits", s.OpenCircuits)
		}
	}
}

// daemonIngester hands fetched bodies to xydiffd. The daemon's PUT
// response says whether the version changed anything; errors are
// returned verbatim and retried by the crawler (ingest failures count
// as transient).
type daemonIngester struct {
	target string
}

func (d *daemonIngester) ingest(ctx context.Context, id string, body []byte) (bool, error) {
	u := d.target + "/docs/" + url.PathEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, strings.NewReader(string(body)))
	if err != nil {
		return false, fmt.Errorf("build PUT %s: %w", u, err)
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, fmt.Errorf("PUT %s: %w", u, err)
	}
	defer func() { _ = resp.Body.Close() }() // best-effort; the read below saw every byte that matters
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, fmt.Errorf("read PUT %s response: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		err := fmt.Errorf("PUT %s: status %d: %s", u, resp.StatusCode, firstLine(payload))
		// A shedding daemon (ErrBusy → 503) names its own pacing via
		// Retry-After; surface it typed so the crawler's retry loop
		// honors the hint instead of its fixed backoff schedule.
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			if after := crawl.ParseRetryAfter(resp.Header.Get("Retry-After")); after > 0 {
				return false, &crawl.RetryAfterError{After: after, Err: err}
			}
		}
		return false, err
	}
	var out struct {
		Version  int `json:"version"`
		DeltaOps int `json:"deltaOps"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return false, fmt.Errorf("parse PUT %s response: %w", u, err)
	}
	return out.Version == 1 || out.DeltaOps > 0, nil
}

// firstLine trims an error payload to something log-friendly.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
