package main

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/crawl"
	"xydiff/internal/diff"
	"xydiff/internal/server"
	"xydiff/internal/store"
)

// TestRunCrawlsIntoDaemon is the two-process pipeline end to end: a
// changesim origin, a real xydiffd handler as the target, and xycrawl's
// run() in between. Fetched versions land in the daemon's store,
// mutations become diffed versions, and the registry with its learned
// validators survives shutdown.
func TestRunCrawlsIntoDaemon(t *testing.T) {
	origin, err := changesim.ServeCorpus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	paths := origin.Paths()

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	daemon := server.New(store.New(diff.Options{}), server.Config{Logger: quiet})
	daemonSrv := httptest.NewServer(daemon.Handler())
	defer func() {
		daemonSrv.Close()
		daemon.Close()
	}()

	cfg := config{
		target:       daemonSrv.URL,
		registry:     filepath.Join(t.TempDir(), "sources.json"),
		adds:         []string{"d0=" + originSrv.URL + paths[0], "d1=" + originSrv.URL + paths[1]},
		min:          20 * time.Millisecond,
		max:          100 * time.Millisecond,
		fetchTimeout: 2 * time.Second,
		logger:       quiet,
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg) }()

	get := func(path string) int {
		resp, err := http.Get(daemonSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	waitCode := func(path string, want int) {
		deadline := time.Now().Add(5 * time.Second)
		for get(path) != want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s to answer %d", path, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Both documents arrive as version 1.
	waitCode("/docs/d0/versions/1", http.StatusOK)
	waitCode("/docs/d1/versions/1", http.StatusOK)
	// A mutation at the origin becomes a diffed version 2 at the daemon.
	if err := origin.Mutate(paths[0]); err != nil {
		t.Fatal(err)
	}
	waitCode("/docs/d0/versions/2", http.StatusOK)
	waitCode("/docs/d0/deltas/1", http.StatusOK)

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}

	// The saved registry resumes with the learned validators.
	reg, err := crawl.OpenRegistry(cfg.registry)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("saved registry has %d sources, want 2", reg.Len())
	}
	for _, id := range []string{"d0", "d1"} {
		src, ok := reg.Get(id)
		if !ok {
			t.Fatalf("source %s missing from saved registry", id)
		}
		if src.ETag == "" || src.Fetches == 0 {
			t.Errorf("source %s saved without learned state: %+v", id, src)
		}
	}
}

// TestRunRejectsEmptyAndMalformed covers the startup error paths.
func TestRunRejectsEmptyAndMalformed(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	ctx := context.Background()
	if err := run(ctx, config{target: "http://127.0.0.1:0", registry: "", logger: quiet}); err == nil {
		t.Error("run with no sources succeeded")
	}
	cfg := config{
		target:   "http://127.0.0.1:0",
		registry: "",
		adds:     []string{"bad=ftp://nope.example/x"},
		logger:   quiet,
	}
	if err := run(ctx, cfg); err == nil {
		t.Error("run with a non-http source succeeded")
	}
}

// TestIngestSurfacesRetryAfter: a 503 from the daemon's load shedding
// carries Retry-After; the ingester must return the typed error so the
// crawler's retry loop can honor the hint. Other failures stay plain.
func TestIngestSurfacesRetryAfter(t *testing.T) {
	var status int
	var retryAfter string
	daemon := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "busy", status)
	}))
	defer daemon.Close()
	ing := &daemonIngester{target: daemon.URL}
	ctx := context.Background()

	status, retryAfter = http.StatusServiceUnavailable, "7"
	_, err := ing.ingest(ctx, "d", []byte("<r/>"))
	var ra *crawl.RetryAfterError
	if !errors.As(err, &ra) || ra.After != 7*time.Second {
		t.Fatalf("503 + Retry-After: err = %v, want RetryAfterError{7s}", err)
	}

	// No header → plain error: nothing to honor.
	status, retryAfter = http.StatusServiceUnavailable, ""
	if _, err := ing.ingest(ctx, "d", []byte("<r/>")); err == nil || errors.As(err, &ra) {
		t.Fatalf("503 without header: err = %v, want plain error", err)
	}
	// 4xx never carries pacing, even with the header set.
	status, retryAfter = http.StatusBadRequest, "7"
	if _, err := ing.ingest(ctx, "d", []byte("<r/>")); err == nil || errors.As(err, &ra) {
		t.Fatalf("400: err = %v, want plain error", err)
	}
}
