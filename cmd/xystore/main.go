// Command xystore is a small change-centric XML warehouse on disk: the
// Xyleme architecture of the paper's Figure 1 as a CLI. Documents are
// stored as their latest version plus the chain of completed deltas;
// any past version is reconstructible, and the delta chain is
// queryable.
//
// The CLI is engine-agnostic: a directory in the sharded segment-log
// layout (MANIFEST.json) opens through internal/vstore, a directory in
// the older per-document layout opens through internal/store, and a
// fresh directory is created sharded. `migrate` converts an old
// directory in place (the original is kept as DIR.pre-migrate).
//
// Usage:
//
//	xystore -dir DIR put ID FILE        install a new version of ID
//	xystore -dir DIR ids                list stored documents
//	xystore -dir DIR log ID             one line per version
//	xystore -dir DIR cat ID [N]         print version N (default latest)
//	xystore -dir DIR delta ID N         print the delta version N -> N+1
//	xystore -dir DIR aggregate ID A B   print the combined delta A -> B
//	xystore -dir DIR value ID EXPR      xpathlite value, every version
//	xystore -dir DIR grep ID A B EXPR   ops between A and B matching EXPR
//	xystore -dir DIR inspect            shard / segment / cache summary
//	xystore -dir DIR compact            fold segment logs into snapshots
//	xystore -dir DIR migrate [SHARDS]   convert an old layout in place
//	xystore -dir DIR scrub [-once] [-repair]
//	                                    verify every checksum; quarantine
//	                                    (and with -repair rewrite) damage
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/dom/domio"
	"xydiff/internal/scrub"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
	"xydiff/internal/xpathlite"
)

func main() {
	dir := flag.String("dir", "xystore-data", "warehouse `directory`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xystore -dir DIR put|ids|log|cat|delta|aggregate|value|grep|inspect|compact|migrate ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xystore:", err)
		os.Exit(1)
	}
}

// engine is the warehouse surface both storage engines provide. The
// sharded engine (*vstore.Store) satisfies it directly; the old
// per-document engine is adapted by oldEngine, which persists on Close.
type engine interface {
	Put(id string, doc *dom.Node) (int, *delta.Delta, error)
	IDs() []string
	Versions(id string) int
	Version(id string, n int) (*dom.Node, error)
	Delta(id string, n int) (*delta.Delta, error)
	Aggregate(id string, from, to int) (*delta.Delta, error)
	Timeline(id string, expr *xpathlite.Expr) ([]store.VersionValue, error)
	ChangesMatching(id string, from, to int, pattern *xpathlite.Expr, kinds ...delta.Kind) ([]store.ChangeHit, error)
	Close() error
}

// oldEngine adapts the per-document store: reads are pass-through and
// a dirty store is saved back to dir on Close, mirroring the engine's
// original save-after-put behavior.
type oldEngine struct {
	*store.Store
	dir   string
	dirty bool
}

func (e *oldEngine) Put(id string, doc *dom.Node) (int, *delta.Delta, error) {
	v, d, err := e.Store.Put(id, doc)
	if err == nil {
		e.dirty = true
	}
	return v, d, err
}

func (e *oldEngine) Close() error {
	if !e.dirty {
		return nil
	}
	e.dirty = false
	return e.Store.Save(e.dir)
}

// loadOrEmpty opens dir with whichever engine owns its layout: sharded
// directories (and fresh ones) through vstore, old per-document
// directories through the legacy store.
func loadOrEmpty(dir string) (engine, error) {
	s, err := vstore.Open(dir, diff.Options{}, vstore.Config{})
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, vstore.ErrNeedsMigration) {
		return nil, err
	}
	old, err := store.Load(dir, diff.Options{})
	if err != nil {
		return nil, err
	}
	return &oldEngine{Store: old, dir: dir}, nil
}

func run(dir string, args []string) error {
	cmd, rest := args[0], args[1:]
	// migrate rewrites the directory layout itself, so it runs before
	// any engine has the directory open.
	if cmd == "migrate" {
		return runMigrate(dir, rest)
	}
	// scrub needs engine-specific integrity plumbing (and, for the old
	// layout, exclusive offline access), so it also bypasses exec.
	if cmd == "scrub" {
		return runScrub(dir, rest)
	}
	s, err := loadOrEmpty(dir)
	if err != nil {
		return err
	}
	err = exec(s, cmd, rest)
	// Close flushes whatever the command wrote (the old engine saves its
	// directory here), so its error is part of the command's outcome.
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

func exec(s engine, cmd string, rest []string) error {
	switch cmd {
	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("put needs ID FILE")
		}
		doc, err := domio.ParseFile(rest[1])
		if err != nil {
			return err
		}
		v, d, err := s.Put(rest[0], doc)
		if err != nil {
			return err
		}
		if d == nil {
			fmt.Printf("%s: version %d (initial)\n", rest[0], v)
		} else {
			fmt.Printf("%s: version %d, delta %d bytes (%s)\n", rest[0], v, d.Size(), d.Count())
		}
		return nil
	case "ids":
		for _, id := range s.IDs() {
			fmt.Printf("%s\t%d versions\n", id, s.Versions(id))
		}
		return nil
	case "log":
		if len(rest) != 1 {
			return fmt.Errorf("log needs ID")
		}
		id := rest[0]
		n := s.Versions(id)
		if n == 0 {
			return fmt.Errorf("unknown document %q", id)
		}
		for v := 1; v <= n; v++ {
			doc, err := s.Version(id, v)
			if err != nil {
				return err
			}
			line := fmt.Sprintf("v%d\t%d bytes", v, len(doc.String()))
			if v > 1 {
				d, err := s.Delta(id, v-1)
				if err != nil {
					return err
				}
				line += "\t" + d.Count().String()
			}
			fmt.Println(line)
		}
		return nil
	case "cat":
		if len(rest) < 1 {
			return fmt.Errorf("cat needs ID [N]")
		}
		id := rest[0]
		v := s.Versions(id)
		if v == 0 {
			return fmt.Errorf("unknown document %q", id)
		}
		if len(rest) == 2 {
			var err error
			if v, err = strconv.Atoi(rest[1]); err != nil {
				return fmt.Errorf("bad version %q", rest[1])
			}
		}
		doc, err := s.Version(id, v)
		if err != nil {
			return err
		}
		_, err = doc.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "delta":
		if len(rest) != 2 {
			return fmt.Errorf("delta needs ID N")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad version %q", rest[1])
		}
		d, err := s.Delta(rest[0], n)
		if err != nil {
			return err
		}
		_, err = d.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "aggregate":
		if len(rest) != 3 {
			return fmt.Errorf("aggregate needs ID A B")
		}
		a, err1 := strconv.Atoi(rest[1])
		b, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad version range %q %q", rest[1], rest[2])
		}
		d, err := s.Aggregate(rest[0], a, b)
		if err != nil {
			return err
		}
		_, err = d.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "value":
		if len(rest) != 2 {
			return fmt.Errorf("value needs ID EXPR")
		}
		expr, err := xpathlite.Compile(rest[1])
		if err != nil {
			return err
		}
		tl, err := s.Timeline(rest[0], expr)
		if err != nil {
			return err
		}
		for _, vv := range tl {
			if vv.Found {
				fmt.Printf("v%d\t%s\n", vv.Version, vv.Value)
			} else {
				fmt.Printf("v%d\t(absent)\n", vv.Version)
			}
		}
		return nil
	case "grep":
		if len(rest) != 4 {
			return fmt.Errorf("grep needs ID A B EXPR")
		}
		a, err1 := strconv.Atoi(rest[1])
		b, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad version range %q %q", rest[1], rest[2])
		}
		expr, err := xpathlite.Compile(rest[3])
		if err != nil {
			return err
		}
		hits, err := s.ChangesMatching(rest[0], a, b, expr)
		if err != nil {
			return err
		}
		for _, h := range hits {
			fmt.Printf("v%d\t%s\t%s\n", h.Version, h.Op.Kind(), h.Path)
		}
		return nil
	case "inspect":
		return runInspect(s)
	case "compact":
		vs, ok := s.(*vstore.Store)
		if !ok {
			return fmt.Errorf("compact needs the sharded layout; run `xystore -dir DIR migrate` first")
		}
		before := vs.StorageStats()
		if err := vs.Checkpoint(); err != nil {
			return err
		}
		after := vs.StorageStats()
		fmt.Printf("compacted %d shards: %d segments -> %d, %d documents snapshotted\n",
			after.Shards, before.Segments, after.Segments, after.Documents)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runInspect prints the storage summary for either engine; for the
// sharded engine that is the shard / segment / group-commit / cache
// breakdown the daemon exports on /healthz.
func runInspect(s engine) error {
	vs, ok := s.(*vstore.Store)
	if !ok {
		fmt.Printf("layout\tper-document (pre-shard)\n")
		fmt.Printf("documents\t%d\n", len(s.IDs()))
		fmt.Printf("hint\trun `xystore -dir DIR migrate` to convert to the sharded layout\n")
		return nil
	}
	ss := vs.StorageStats()
	fmt.Printf("layout\tsharded segment logs (vstore-v1)\n")
	fmt.Printf("shards\t%d\n", ss.Shards)
	fmt.Printf("documents\t%d\n", ss.Documents)
	fmt.Printf("segments\t%d\n", ss.Segments)
	fmt.Printf("fsyncs\t%d (mean batch %.2f, max %d)\n", ss.FsyncTotal, ss.MeanBatch(), ss.MaxBatch)
	fmt.Printf("cache\t%d/%d resident, hit ratio %.3f\n", ss.CacheLen, ss.CacheCap, ss.CacheHitRatio())
	fmt.Printf("compactions\t%d (%.3fs total)\n", ss.Compactions, ss.CompactionSeconds)
	for _, sh := range ss.PerShard {
		fmt.Printf("shard %03d\t%d docs\t%d segments\t%d appends\t%d fsyncs\t%d rejected\n",
			sh.Shard, sh.Docs, sh.Segments, sh.Appends, sh.Syncs, sh.Rejected)
	}
	return nil
}

// runScrub verifies every checksum in the warehouse. One pass by
// default with -once, otherwise a pass every -interval until
// interrupted. Damage is quarantined (renamed aside, never deleted);
// -repair additionally rewrites whatever the surviving redundancy
// covers. Works on both layouts: the sharded engine scrubs through
// its live scrubber, the old per-document layout is scanned offline.
func runScrub(dir string, rest []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	once := fs.Bool("once", false, "run exactly one pass and exit")
	repair := fs.Bool("repair", false, "rewrite damage covered by surviving redundancy instead of only quarantining")
	interval := fs.Duration("interval", time.Minute, "pause between passes without -once")
	throttle := fs.Int64("throttle", 0, "read ceiling in bytes per second (0 = default 8MiB/s, negative = unthrottled)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("scrub takes no arguments")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var pass scrub.PassFunc
	// OpenDegraded: a scrub run must not be refused by the very
	// corruption it exists to handle. Damage found during recovery is
	// quarantined and reported below; live repair from resident chains
	// covers damage that appears while the pass loop runs.
	vs, err := vstore.Open(dir, diff.Options{}, vstore.Config{
		OpenDegraded: true,
		Scrub:        vstore.ScrubConfig{Throttle: *throttle, NoRepair: !*repair},
	})
	switch {
	case err == nil:
		defer vs.Close()
		if rec := vs.RecoveryStats(); rec.Quarantined > 0 {
			fmt.Printf("scrub: recovery quarantined %d corrupt files; %d documents serve degraded\n",
				rec.Quarantined, rec.DegradedDocs)
		}
		pass = vs.ScrubPass
	case errors.Is(err, vstore.ErrNeedsMigration):
		cfg := scrub.Config{Throttle: *throttle, Repair: *repair}
		pass = func(ctx context.Context) (scrub.Report, error) {
			return store.ScrubDir(ctx, nil, dir, cfg)
		}
	default:
		return err
	}
	for {
		rep, err := pass(ctx)
		printScrubReport(rep)
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		if *once || ctx.Err() != nil {
			return nil
		}
		pause := time.NewTimer(*interval)
		select {
		case <-ctx.Done():
			pause.Stop()
			return nil
		case <-pause.C:
		}
	}
}

// printScrubReport renders one pass for the terminal.
func printScrubReport(rep scrub.Report) {
	rate := 0.0
	if s := rep.Duration.Seconds(); s > 0 {
		rate = float64(rep.BytesScanned) / s / (1 << 20)
	}
	fmt.Printf("scrub: %d segments + %d snapshots, %d records, %d bytes in %s (%.1f MB/s)\n",
		rep.SegmentsScanned, rep.SnapshotsScanned, rep.RecordsVerified,
		rep.BytesScanned, rep.Duration.Round(time.Millisecond), rate)
	fmt.Printf("scrub: %d found, %d repaired, %d quarantined, %d documents degraded\n",
		rep.Found, rep.Repaired, rep.Quarantined, rep.Degraded)
	for _, f := range rep.Findings {
		at := ""
		if f.Offset >= 0 {
			at = fmt.Sprintf(" at %d", f.Offset)
		}
		fmt.Printf("scrub: %s %s%s: %s\n", f.Action, f.Path, at, f.Reason)
	}
}

// runMigrate converts an old per-document directory to the sharded
// layout in place, keeping the original as DIR.pre-migrate.
func runMigrate(dir string, rest []string) error {
	cfg := vstore.Config{}
	switch len(rest) {
	case 0:
	case 1:
		n, err := strconv.Atoi(rest[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad shard count %q", rest[0])
		}
		cfg.Shards = n
	default:
		return fmt.Errorf("migrate takes at most one argument (SHARDS)")
	}
	count, err := vstore.Migrate(dir, diff.Options{}, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("migrated %d documents to the sharded layout (backup kept at %s.pre-migrate)\n", count, dir)
	return nil
}
