// Command xystore is a small change-centric XML warehouse on disk: the
// Xyleme architecture of the paper's Figure 1 as a CLI. Documents are
// stored as their latest version plus the chain of completed deltas;
// any past version is reconstructible, and the delta chain is
// queryable.
//
// Usage:
//
//	xystore -dir DIR put ID FILE        install a new version of ID
//	xystore -dir DIR ids                list stored documents
//	xystore -dir DIR log ID             one line per version
//	xystore -dir DIR cat ID [N]         print version N (default latest)
//	xystore -dir DIR delta ID N         print the delta version N -> N+1
//	xystore -dir DIR aggregate ID A B   print the combined delta A -> B
//	xystore -dir DIR value ID EXPR      xpathlite value, every version
//	xystore -dir DIR grep ID A B EXPR   ops between A and B matching EXPR
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/xpathlite"
)

func main() {
	dir := flag.String("dir", "xystore-data", "warehouse `directory`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xystore -dir DIR put|ids|log|cat|delta|aggregate|value|grep ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xystore:", err)
		os.Exit(1)
	}
}

func run(dir string, args []string) error {
	s, err := loadOrEmpty(dir)
	if err != nil {
		return err
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("put needs ID FILE")
		}
		doc, err := dom.ParseFile(rest[1])
		if err != nil {
			return err
		}
		v, d, err := s.Put(rest[0], doc)
		if err != nil {
			return err
		}
		if d == nil {
			fmt.Printf("%s: version %d (initial)\n", rest[0], v)
		} else {
			fmt.Printf("%s: version %d, delta %d bytes (%s)\n", rest[0], v, d.Size(), d.Count())
		}
		return s.Save(dir)
	case "ids":
		for _, id := range s.IDs() {
			fmt.Printf("%s\t%d versions\n", id, s.Versions(id))
		}
		return nil
	case "log":
		if len(rest) != 1 {
			return fmt.Errorf("log needs ID")
		}
		id := rest[0]
		n := s.Versions(id)
		if n == 0 {
			return fmt.Errorf("unknown document %q", id)
		}
		for v := 1; v <= n; v++ {
			doc, err := s.Version(id, v)
			if err != nil {
				return err
			}
			line := fmt.Sprintf("v%d\t%d bytes", v, len(doc.String()))
			if v > 1 {
				d, err := s.Delta(id, v-1)
				if err != nil {
					return err
				}
				line += "\t" + d.Count().String()
			}
			fmt.Println(line)
		}
		return nil
	case "cat":
		if len(rest) < 1 {
			return fmt.Errorf("cat needs ID [N]")
		}
		id := rest[0]
		v := s.Versions(id)
		if v == 0 {
			return fmt.Errorf("unknown document %q", id)
		}
		if len(rest) == 2 {
			if v, err = strconv.Atoi(rest[1]); err != nil {
				return fmt.Errorf("bad version %q", rest[1])
			}
		}
		doc, err := s.Version(id, v)
		if err != nil {
			return err
		}
		_, err = doc.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "delta":
		if len(rest) != 2 {
			return fmt.Errorf("delta needs ID N")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad version %q", rest[1])
		}
		d, err := s.Delta(rest[0], n)
		if err != nil {
			return err
		}
		_, err = d.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "aggregate":
		if len(rest) != 3 {
			return fmt.Errorf("aggregate needs ID A B")
		}
		a, err1 := strconv.Atoi(rest[1])
		b, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad version range %q %q", rest[1], rest[2])
		}
		d, err := s.Aggregate(rest[0], a, b)
		if err != nil {
			return err
		}
		_, err = d.WriteTo(os.Stdout)
		fmt.Println()
		return err
	case "value":
		if len(rest) != 2 {
			return fmt.Errorf("value needs ID EXPR")
		}
		expr, err := xpathlite.Compile(rest[1])
		if err != nil {
			return err
		}
		tl, err := s.Timeline(rest[0], expr)
		if err != nil {
			return err
		}
		for _, vv := range tl {
			if vv.Found {
				fmt.Printf("v%d\t%s\n", vv.Version, vv.Value)
			} else {
				fmt.Printf("v%d\t(absent)\n", vv.Version)
			}
		}
		return nil
	case "grep":
		if len(rest) != 4 {
			return fmt.Errorf("grep needs ID A B EXPR")
		}
		a, err1 := strconv.Atoi(rest[1])
		b, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad version range %q %q", rest[1], rest[2])
		}
		expr, err := xpathlite.Compile(rest[3])
		if err != nil {
			return err
		}
		hits, err := s.ChangesMatching(rest[0], a, b, expr)
		if err != nil {
			return err
		}
		for _, h := range hits {
			fmt.Printf("v%d\t%s\t%s\n", h.Version, h.Op.Kind(), h.Path)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func loadOrEmpty(dir string) (*store.Store, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return store.New(diff.Options{}), nil
	}
	return store.Load(dir, diff.Options{})
}
