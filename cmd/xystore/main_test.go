package main

import (
	"os"
	"path/filepath"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
)

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreWorkflow(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	v1 := writeDoc(t, dir, "v1.xml", `<cat><p><name>a</name><price>$1</price></p></cat>`)
	v2 := writeDoc(t, dir, "v2.xml", `<cat><p><name>a</name><price>$2</price></p><p><name>b</name><price>$3</price></p></cat>`)

	for _, args := range [][]string{
		{"put", "docs/cat", v1},
		{"put", "docs/cat", v2},
		{"ids"},
		{"log", "docs/cat"},
		{"cat", "docs/cat"},
		{"cat", "docs/cat", "1"},
		{"delta", "docs/cat", "1"},
		{"aggregate", "docs/cat", "1", "2"},
		{"value", "docs/cat", "//p[1]/price"},
		{"grep", "docs/cat", "1", "2", "//p"},
	} {
		if err := run(wh, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestStoreErrors(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	good := writeDoc(t, dir, "v1.xml", `<r/>`)
	if err := run(wh, []string{"put", "d", good}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"bogus-command"},
		{"put"},                      // missing args
		{"put", "d", "missing.xml"},  // missing file
		{"log"},                      // missing id
		{"log", "ghost"},             // unknown id
		{"cat"},                      // missing id
		{"cat", "ghost"},             // unknown id
		{"cat", "d", "notanumber"},   // bad version
		{"delta", "d"},               // missing args
		{"delta", "d", "9"},          // out of range
		{"aggregate", "d", "1"},      // missing args
		{"aggregate", "d", "x", "y"}, // bad numbers
		{"value", "d"},               // missing expr
		{"value", "d", "[broken"},    // bad expr
		{"grep", "d", "1", "2"},      // missing expr
		{"grep", "d", "x", "y", "//a"},
	}
	for _, args := range cases {
		if err := run(wh, args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLoadOrEmpty(t *testing.T) {
	s, err := loadOrEmpty(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil || s == nil {
		t.Fatalf("loadOrEmpty fresh = %v, %v", s, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInspectAndCompact: a fresh warehouse is sharded, inspect renders
// its storage summary, and compact folds the segment logs.
func TestInspectAndCompact(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	v1 := writeDoc(t, dir, "v1.xml", `<r><a>1</a></r>`)
	v2 := writeDoc(t, dir, "v2.xml", `<r><a>2</a><b/></r>`)
	for _, args := range [][]string{
		{"put", "d", v1},
		{"put", "d", v2},
		{"inspect"},
		{"compact"},
		{"cat", "d", "1"},
	} {
		if err := run(wh, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	// After compact every version lives in snapshots: the docs dirs of
	// the shards must hold the document.
	s, err := vstore.Open(wh, diff.Options{}, vstore.Config{})
	if err != nil {
		t.Fatalf("warehouse is not sharded after put: %v", err)
	}
	defer s.Close()
	if got := s.Versions("d"); got != 2 {
		t.Fatalf("d has %d versions, want 2", got)
	}
	if rec := s.RecoveryStats(); rec.SnapshotVersions != 2 {
		t.Fatalf("compact left %d snapshot versions, want 2", rec.SnapshotVersions)
	}
}

// TestMigrateCommand drives an old per-document directory through the
// CLI's migrate and verifies the converted warehouse serves the same
// versions (the engine-level equivalence lives in internal/vstore).
func TestMigrateCommand(t *testing.T) {
	root := t.TempDir()
	wh := filepath.Join(root, "warehouse")
	old, err := store.Open(wh, diff.Options{}, store.Durability{Sync: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, xml := range []string{`<r><a>1</a></r>`, `<r><a>2</a></r>`, `<r><a>2</a><b/></r>`} {
		doc, err := dom.ParseString(xml)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := old.Put("d", doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	// Old layout: inspect works through the legacy engine, compact
	// refuses with a pointer at migrate.
	if err := run(wh, []string{"inspect"}); err != nil {
		t.Fatalf("inspect on old layout: %v", err)
	}
	if err := run(wh, []string{"compact"}); err == nil {
		t.Fatal("compact on old layout succeeded, want migrate hint")
	}

	if err := run(wh, []string{"migrate", "4"}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if _, err := os.Stat(wh + ".pre-migrate"); err != nil {
		t.Fatalf("backup missing after migrate: %v", err)
	}
	for _, args := range [][]string{
		{"ids"},
		{"log", "d"},
		{"cat", "d", "1"},
		{"inspect"},
		{"compact"},
	} {
		if err := run(wh, args); err != nil {
			t.Fatalf("%v after migrate: %v", args, err)
		}
	}
	s, err := vstore.Open(wh, diff.Options{}, vstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Versions("d"); got != 3 {
		t.Fatalf("d has %d versions after migrate, want 3", got)
	}
	// Bad migrate invocations fail loudly.
	if err := run(wh, []string{"migrate"}); err == nil {
		t.Fatal("re-migrating a sharded warehouse succeeded")
	}
	if err := run(wh, []string{"migrate", "zero"}); err == nil {
		t.Fatal("migrate with bad shard count succeeded")
	}
}

func TestScrubCommandShardedLayout(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	v1 := writeDoc(t, dir, "v1.xml", `<r><a>1</a></r>`)
	v2 := writeDoc(t, dir, "v2.xml", `<r><a>2</a></r>`)
	for _, args := range [][]string{{"put", "d", v1}, {"put", "d", v2}} {
		if err := run(wh, args); err != nil {
			t.Fatal(err)
		}
	}
	// Clean pass.
	if err := run(wh, []string{"scrub", "-once"}); err != nil {
		t.Fatalf("clean scrub: %v", err)
	}
	// Corrupt a snapshot (compact first so one exists). After the
	// compaction the snapshot is the only copy, so an offline scrub
	// cannot rebuild it: the honest outcome is quarantine + degraded,
	// never a refused run and never a silent wrong read.
	if err := run(wh, []string{"compact"}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(wh, "shard-*", "docs", "*", "v1.xml"))
	if len(matches) != 1 {
		t.Fatalf("snapshots = %v", matches)
	}
	if err := faultfs.FlipBit(faultfs.OS{}, matches[0], 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := run(wh, []string{"scrub", "-once", "-repair"}); err != nil {
		t.Fatalf("scrub on damaged dir: %v", err)
	}
	q, _ := filepath.Glob(filepath.Join(wh, "shard-*", "docs", "*"+scrub.QuarantineSuffix))
	if len(q) != 1 {
		t.Fatalf("quarantined snapshot dirs = %v", q)
	}
	// Reads of the lost history surface a degraded error, not bytes
	// from the corrupt file.
	if err := run(wh, []string{"cat", "d", "1"}); err == nil {
		t.Fatal("cat of quarantined history succeeded")
	}
}

func TestScrubCommandOldLayout(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "old")
	s, err := store.Open(wh, diff.Options{}, store.Durability{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dom.ParseString(`<r><a>1</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("d", doc); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(wh); err != nil { // snapshot alongside the journal
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(wh, []string{"scrub", "-once"}); err != nil {
		t.Fatalf("old-layout scrub: %v", err)
	}
	// A diverged latest.xml is derived state: -repair rewrites it from
	// the reconstructed chain.
	latest := filepath.Join(wh, "d", "latest.xml")
	if err := os.WriteFile(latest, []byte(`<r><a>wrong</a></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(wh, []string{"scrub", "-once", "-repair"}); err != nil {
		t.Fatalf("old-layout repair: %v", err)
	}
	fixed, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if string(fixed) == `<r><a>wrong</a></r>` {
		t.Fatal("latest.xml not rewritten")
	}
	// Damage the journal: scrub must quarantine, not delete.
	j, _ := filepath.Glob(filepath.Join(wh, "journal-*.log"))
	if len(j) != 1 {
		t.Fatalf("journals = %v", j)
	}
	if err := faultfs.FlipBit(faultfs.OS{}, j[0], 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(wh, []string{"scrub", "-once"}); err != nil {
		t.Fatalf("scrub with damage: %v", err)
	}
	if _, err := os.Stat(j[0] + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("journal not quarantined: %v", err)
	}
}
