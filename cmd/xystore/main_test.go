package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreWorkflow(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	v1 := writeDoc(t, dir, "v1.xml", `<cat><p><name>a</name><price>$1</price></p></cat>`)
	v2 := writeDoc(t, dir, "v2.xml", `<cat><p><name>a</name><price>$2</price></p><p><name>b</name><price>$3</price></p></cat>`)

	for _, args := range [][]string{
		{"put", "docs/cat", v1},
		{"put", "docs/cat", v2},
		{"ids"},
		{"log", "docs/cat"},
		{"cat", "docs/cat"},
		{"cat", "docs/cat", "1"},
		{"delta", "docs/cat", "1"},
		{"aggregate", "docs/cat", "1", "2"},
		{"value", "docs/cat", "//p[1]/price"},
		{"grep", "docs/cat", "1", "2", "//p"},
	} {
		if err := run(wh, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestStoreErrors(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "warehouse")
	good := writeDoc(t, dir, "v1.xml", `<r/>`)
	if err := run(wh, []string{"put", "d", good}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"bogus-command"},
		{"put"},                      // missing args
		{"put", "d", "missing.xml"},  // missing file
		{"log"},                      // missing id
		{"log", "ghost"},             // unknown id
		{"cat"},                      // missing id
		{"cat", "ghost"},             // unknown id
		{"cat", "d", "notanumber"},   // bad version
		{"delta", "d"},               // missing args
		{"delta", "d", "9"},          // out of range
		{"aggregate", "d", "1"},      // missing args
		{"aggregate", "d", "x", "y"}, // bad numbers
		{"value", "d"},               // missing expr
		{"value", "d", "[broken"},    // bad expr
		{"grep", "d", "1", "2"},      // missing expr
		{"grep", "d", "x", "y", "//a"},
	}
	for _, args := range cases {
		if err := run(wh, args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLoadOrEmpty(t *testing.T) {
	s, err := loadOrEmpty(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil || s == nil {
		t.Fatalf("loadOrEmpty fresh = %v, %v", s, err)
	}
}
