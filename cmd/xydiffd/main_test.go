package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/server"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a cancel to trigger graceful shutdown, and the channel run's
// error arrives on.
func startDaemon(t *testing.T, dir string) (url string, shutdown context.CancelFunc, done chan error) {
	t.Helper()
	cfg := config{
		addr:   "127.0.0.1:0",
		dir:    dir,
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		server: server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))},
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(a string) { addrc <- a }) }()
	select {
	case a := <-addrc:
		return "http://" + a, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil, nil
	}
}

func waitExit(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func put(t *testing.T, url, id, body string) {
	t.Helper()
	req, err := http.NewRequest("PUT", url+"/docs/"+id, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, b)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestGracefulShutdownAndRestart is the daemon's acceptance test:
// versions installed over HTTP survive a graceful shutdown, and a
// restarted daemon serves every stored version and delta from disk.
func TestGracefulShutdownAndRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	v1 := `<Catalog><Product><Name>tx123</Name></Product></Catalog>`
	v2 := `<Catalog><Product><Name>tx123</Name></Product><Product><Name>zy456</Name></Product></Catalog>`

	url, shutdown, done := startDaemon(t, dir)
	put(t, url, "catalog", v1)
	put(t, url, "catalog", v2)
	shutdown()
	waitExit(t, done)

	// Fresh process state: everything must come back from disk.
	url, shutdown, done = startDaemon(t, dir)
	defer func() { shutdown(); waitExit(t, done) }()

	if code, body := get(t, url+"/docs/catalog/versions/1"); code != 200 || body != v1 {
		t.Errorf("v1 after restart: %d %q", code, body)
	}
	if code, body := get(t, url+"/docs/catalog"); code != 200 || body != v2 {
		t.Errorf("latest after restart: %d %q", code, body)
	}
	if code, body := get(t, url+"/docs/catalog/deltas/1"); code != 200 || !strings.Contains(body, "zy456") {
		t.Errorf("delta after restart: %d %q", code, body)
	}
	// And the restarted daemon still accepts new versions on top.
	put(t, url, "catalog", v1)
	if code, _ := get(t, url+"/docs/catalog/versions/3"); code != 200 {
		t.Errorf("v3 after restart put: %d", code)
	}
}

func TestShutdownWithoutTraffic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	_, shutdown, done := startDaemon(t, dir)
	shutdown()
	waitExit(t, done)
}

// startCrawlDaemon is startDaemon with the acquisition layer enabled on
// a fast schedule.
func startCrawlDaemon(t *testing.T, dir string) (url string, shutdown context.CancelFunc, done chan error) {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := config{
		addr:     "127.0.0.1:0",
		dir:      dir,
		logger:   quiet,
		server:   server.Config{Logger: quiet},
		crawl:    true,
		crawlMin: 20 * time.Millisecond,
		crawlMax: 100 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(a string) { addrc <- a }) }()
	select {
	case a := <-addrc:
		return "http://" + a, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil, nil
	}
}

// TestCrawlFlagEndToEnd: a -crawl daemon polls an origin into its
// store, and the source registry (with its learned validators) survives
// a graceful restart alongside the documents.
func TestCrawlFlagEndToEnd(t *testing.T) {
	origin, err := changesim.ServeCorpus(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	path := origin.Paths()[0]

	dir := filepath.Join(t.TempDir(), "data")
	url, shutdown, done := startCrawlDaemon(t, dir)

	src := `{"id":"feed","url":"` + originSrv.URL + path + `"}`
	req, err := http.NewRequest("POST", url+"/sources", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /sources: %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get(t, url+"/docs/feed/versions/1"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crawled document never reached the store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown()
	waitExit(t, done)

	// Restart: the registry comes back from disk next to the store.
	url, shutdown, done = startCrawlDaemon(t, dir)
	defer func() { shutdown(); waitExit(t, done) }()
	code, body := get(t, url+"/sources")
	if code != 200 || !strings.Contains(body, `"feed"`) {
		t.Fatalf("sources after restart: %d %s", code, body)
	}
	if !strings.Contains(body, `"etag"`) {
		t.Errorf("restarted source lost its validators: %s", body)
	}
	if code, _ := get(t, url+"/docs/feed/versions/1"); code != 200 {
		t.Errorf("crawled document lost across restart: %d", code)
	}
}

var listenAddrRe = regexp.MustCompile(`msg="xydiffd listening" addr=(\S+)`)

// TestKillNineLosesNoAcknowledgedPut is the durability acceptance test:
// a real xydiffd process under -journal-sync=always is killed with
// SIGKILL (no shutdown, no checkpoint) — while concurrent writers are
// driving group-committed PUTs — and every PUT it acknowledged must
// reconstruct byte-identically from the segment logs alone.
func TestKillNineLosesNoAcknowledgedPut(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a subprocess")
	}
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "data")
	bin := filepath.Join(tmp, "xydiffd.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir,
		"-journal-sync", "always", "-store-shards", "4", "-fsync-delay", "3ms")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenAddrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var url string
	select {
	case a := <-addrc:
		url = "http://" + a
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	// Acknowledge a handful of versions across two documents, recording
	// exactly what the live daemon serves for each.
	versions := []string{
		`<Catalog><Product><Name>tx123</Name></Product></Catalog>`,
		`<Catalog><Product><Name>tx123</Name></Product><Product><Name>zy456</Name></Product></Catalog>`,
		`<Catalog><Product><Name>zy456</Name><Price>$450</Price></Product></Catalog>`,
	}
	for _, v := range versions {
		put(t, url, "catalog", v)
	}
	put(t, url, "other", `<r><p>solo</p></r>`)
	served := make([]string, len(versions))
	for i := range versions {
		code, body := get(t, url+"/docs/catalog/versions/"+strconv.Itoa(i+1))
		if code != 200 {
			t.Fatalf("version %d before kill: %d %s", i+1, code, body)
		}
		served[i] = body
	}

	// Concurrent writers drive group-committed PUTs across the shards;
	// the kill lands somewhere in the middle of their run. Every 2xx the
	// daemon returned is an acknowledged, fsynced version.
	type acked struct {
		id, want string
		version  int
	}
	var (
		mu        sync.Mutex
		ackedPuts []acked
	)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("hot-%02d", w)
			for v := 1; ; v++ {
				xml := fmt.Sprintf(`<r><w>%d</w><v>%d</v></r>`, w, v)
				req, err := http.NewRequest("PUT", url+"/docs/"+id, strings.NewReader(xml))
				if err != nil {
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // daemon died mid-request: this PUT was never acked
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code >= 300 {
					return
				}
				mu.Lock()
				ackedPuts = append(ackedPuts, acked{id: id, version: v, want: xml})
				mu.Unlock()
			}
		}(w)
	}

	// No quarter: the process dies between one instruction and the next,
	// while the writers above are mid-flight.
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	wg.Wait()
	if len(ackedPuts) == 0 {
		t.Fatal("no concurrent PUT was acknowledged before the kill")
	}

	// Everything acknowledged must come back from the segment logs alone
	// (no checkpoint ever ran).
	st, err := vstore.Open(dir, diff.Options{}, vstore.Config{Sync: store.SyncOff, CompactSegments: -1})
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer st.Close()
	if got := st.Versions("catalog"); got != len(versions) {
		t.Fatalf("catalog has %d versions after SIGKILL, want %d", got, len(versions))
	}
	for i, want := range served {
		doc, err := st.Version("catalog", i+1)
		if err != nil {
			t.Fatalf("reconstruct version %d: %v", i+1, err)
		}
		if got := doc.String(); got != want {
			t.Errorf("version %d differs after SIGKILL:\n got %q\nwant %q", i+1, got, want)
		}
	}
	if got := st.Versions("other"); got != 1 {
		t.Errorf("other has %d versions, want 1", got)
	}
	for _, a := range ackedPuts {
		doc, err := st.Version(a.id, a.version)
		if err != nil {
			t.Errorf("acknowledged %s v%d lost after SIGKILL: %v", a.id, a.version, err)
			continue
		}
		if got := doc.String(); got != a.want {
			t.Errorf("%s v%d differs after SIGKILL:\n got %q\nwant %q", a.id, a.version, got, a.want)
		}
	}
	rec := st.RecoveryStats()
	if want := len(versions) + 1 + len(ackedPuts); rec.JournalRecords < want {
		t.Errorf("replayed %d segment records, want at least %d", rec.JournalRecords, want)
	}
	if rec.SnapshotVersions != 0 {
		t.Errorf("recovery found %d snapshot versions, want 0 (no checkpoint ran)", rec.SnapshotVersions)
	}
}
