package main

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xydiff/internal/server"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a cancel to trigger graceful shutdown, and the channel run's
// error arrives on.
func startDaemon(t *testing.T, dir string) (url string, shutdown context.CancelFunc, done chan error) {
	t.Helper()
	cfg := config{
		addr:   "127.0.0.1:0",
		dir:    dir,
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		server: server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))},
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- run(ctx, cfg, func(a string) { addrc <- a }) }()
	select {
	case a := <-addrc:
		return "http://" + a, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil, nil
	}
}

func waitExit(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func put(t *testing.T, url, id, body string) {
	t.Helper()
	req, err := http.NewRequest("PUT", url+"/docs/"+id, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, b)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestGracefulShutdownAndRestart is the daemon's acceptance test:
// versions installed over HTTP survive a graceful shutdown, and a
// restarted daemon serves every stored version and delta from disk.
func TestGracefulShutdownAndRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	v1 := `<Catalog><Product><Name>tx123</Name></Product></Catalog>`
	v2 := `<Catalog><Product><Name>tx123</Name></Product><Product><Name>zy456</Name></Product></Catalog>`

	url, shutdown, done := startDaemon(t, dir)
	put(t, url, "catalog", v1)
	put(t, url, "catalog", v2)
	shutdown()
	waitExit(t, done)

	// Fresh process state: everything must come back from disk.
	url, shutdown, done = startDaemon(t, dir)
	defer func() { shutdown(); waitExit(t, done) }()

	if code, body := get(t, url+"/docs/catalog/versions/1"); code != 200 || body != v1 {
		t.Errorf("v1 after restart: %d %q", code, body)
	}
	if code, body := get(t, url+"/docs/catalog"); code != 200 || body != v2 {
		t.Errorf("latest after restart: %d %q", code, body)
	}
	if code, body := get(t, url+"/docs/catalog/deltas/1"); code != 200 || !strings.Contains(body, "zy456") {
		t.Errorf("delta after restart: %d %q", code, body)
	}
	// And the restarted daemon still accepts new versions on top.
	put(t, url, "catalog", v1)
	if code, _ := get(t, url+"/docs/catalog/versions/3"); code != 200 {
		t.Errorf("v3 after restart put: %d", code)
	}
}

func TestShutdownWithoutTraffic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	_, shutdown, done := startDaemon(t, dir)
	shutdown()
	waitExit(t, done)
}
