// Command xydiffd is the networked change-control service: the Xyleme
// pipeline (crawler → diff → delta storage → alerter) behind an HTTP
// API. Clients PUT document versions; the daemon computes and stores
// completed deltas, reconstructs any past version, serves single or
// aggregated delta-XML, and raises subscription alerts (polled or
// streamed as NDJSON).
//
// Usage:
//
//	xydiffd [flags]
//
//	-addr    listen address (default :8427)
//	-dir     data directory; loaded on start, flushed on shutdown
//	         (default xydiffd-data)
//	-workers diff worker pool size (default GOMAXPROCS)
//	-queue   queued diffs before requests are shed with 503 (default 64)
//	-timeout per-request deadline, diff included (default 30s)
//	-max-body largest accepted document version in bytes (default 16 MiB)
//	-journal-sync journal fsync policy: always, interval or off
//	         (default always)
//	-journal-sync-interval flush period under -journal-sync=interval
//	         (default 100ms)
//	-store-shards number of storage shards for a fresh data directory
//	         (existing directories keep their manifest's count;
//	         default 16)
//	-fsync-batch max Puts folded into one group-committed fsync
//	         (default 128)
//	-fsync-delay how long a commit may linger for more writers to
//	         join its batch (default 2ms)
//	-version-cache materialized document versions kept in memory
//	         (default 4096)
//	-crawl   enable the acquisition layer: sources registered via the
//	         /sources API are polled on the adaptive schedule and fed
//	         through the same parse/diff pipeline as PUTs
//	-crawl-min / -crawl-max bounds of the adaptive revisit interval
//	         (defaults 15s / 1h)
//	-crawl-concurrency fetcher pool size (default min(GOMAXPROCS, 8))
//
// Storage is the sharded, group-committed engine (internal/vstore):
// documents hash onto -store-shards segment logs, concurrent PUTs to
// one shard share a single fsync, and a background compactor folds
// cold segments into per-document snapshots. Every PUT is appended to
// its shard's segment before it is acknowledged; under
// -journal-sync=always an acknowledged version survives even kill -9
// or power loss. Startup replays the segments on top of the last
// snapshots (truncating torn tails, refusing corruption with an error
// that names the file and offset). A data directory from a pre-shard
// build is refused with a pointer at `xystore migrate`. On
// SIGINT/SIGTERM the daemon stops accepting requests, lets in-flight
// diffs finish, checkpoints the store to -dir with crash-safe renames
// and retires the replayed segments, so a restarted daemon serves
// every stored version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xydiff/internal/crawl"
	"xydiff/internal/diff"
	"xydiff/internal/server"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
)

type config struct {
	addr         string
	dir          string
	journalSync  string
	syncInterval time.Duration
	server       server.Config
	logger       *slog.Logger

	diffWorkers  int
	diffMatcher  string
	storeShards  int
	fsyncBatch   int
	fsyncDelay   time.Duration
	versionCache int

	crawl            bool
	crawlMin         time.Duration
	crawlMax         time.Duration
	crawlConcurrency int

	scrubInterval time.Duration
	scrubThrottle int64
	scrubNoRepair bool
	degradedOpen  bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8427", "listen `address`")
	flag.StringVar(&cfg.dir, "dir", "xydiffd-data", "data `directory` (loaded on start, flushed on shutdown)")
	flag.IntVar(&cfg.server.Workers, "workers", 0, "diff worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.diffWorkers, "diff-workers", 1, "goroutines per diff (0 = GOMAXPROCS, 1 = sequential; raise only when the pool is not already saturating the CPUs)")
	flag.StringVar(&cfg.diffMatcher, "matcher", "", "default diff `matcher`: buld (the paper's, default) or sftm (similarity-based, for real-web HTML); overridable per PUT with ?matcher= and per crawl source")
	flag.IntVar(&cfg.server.QueueDepth, "queue", 0, "max queued diffs before shedding (0 = default 64)")
	flag.DurationVar(&cfg.server.RequestTimeout, "timeout", 0, "per-request `deadline` (0 = default 30s)")
	flag.Int64Var(&cfg.server.MaxBodyBytes, "max-body", 0, "max document `bytes` per PUT (0 = default 16MiB)")
	flag.StringVar(&cfg.journalSync, "journal-sync", "always", "journal fsync `policy`: always, interval or off")
	flag.DurationVar(&cfg.syncInterval, "journal-sync-interval", 100*time.Millisecond, "flush `period` under -journal-sync=interval")
	flag.IntVar(&cfg.storeShards, "store-shards", 0, "storage shard count for a fresh directory (0 = default 16; existing directories keep their manifest's count)")
	flag.IntVar(&cfg.fsyncBatch, "fsync-batch", 0, "max Puts per group-committed fsync (0 = default 128)")
	flag.DurationVar(&cfg.fsyncDelay, "fsync-delay", 0, "group-commit linger `window` for more writers to join a batch (0 = default 2ms)")
	flag.IntVar(&cfg.versionCache, "version-cache", 0, "materialized document versions kept in memory (0 = default 4096)")
	flag.BoolVar(&cfg.crawl, "crawl", false, "enable the crawler (sources registered via /sources)")
	flag.DurationVar(&cfg.crawlMin, "crawl-min", 0, "minimum revisit `interval` (0 = default 15s)")
	flag.DurationVar(&cfg.crawlMax, "crawl-max", 0, "maximum revisit `interval` (0 = default 1h)")
	flag.IntVar(&cfg.crawlConcurrency, "crawl-concurrency", 0, "fetcher pool size (0 = min(GOMAXPROCS, 8))")
	flag.DurationVar(&cfg.scrubInterval, "scrub-interval", 0, "background integrity scrub `period` (0 disables the scrubber)")
	flag.Int64Var(&cfg.scrubThrottle, "scrub-throttle", 0, "scrub read ceiling in `bytes` per second (0 = default 8MiB/s, negative = unthrottled)")
	flag.BoolVar(&cfg.scrubNoRepair, "scrub-no-repair", false, "quarantine every corruption instead of repairing from resident data")
	flag.BoolVar(&cfg.degradedOpen, "degraded-open", false, "tolerate corrupt files at startup: quarantine them and serve the affected documents degraded instead of refusing to start")
	flag.Parse()
	cfg.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg.server.Logger = cfg.logger

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "xydiffd:", err)
		os.Exit(1)
	}
}

// run brings the daemon up, serves until ctx is canceled, then shuts
// down gracefully: listener closed, in-flight requests drained, worker
// pool flushed, store saved to cfg.dir. ready, if non-nil, is called
// with the bound address once the listener accepts connections (tests
// pass -addr 127.0.0.1:0 and dial what they get back).
func run(ctx context.Context, cfg config, ready func(addr string)) error {
	if cfg.journalSync == "" {
		cfg.journalSync = "always"
	}
	policy, err := store.ParseSyncPolicy(cfg.journalSync)
	if err != nil {
		return err
	}
	matcher, err := diff.ParseMatcher(cfg.diffMatcher)
	if err != nil {
		return err
	}
	st, err := vstore.Open(cfg.dir, diff.Options{Workers: cfg.diffWorkers, Matcher: matcher}, vstore.Config{
		Shards:       cfg.storeShards,
		Sync:         policy,
		SyncInterval: cfg.syncInterval,
		MaxBatch:     cfg.fsyncBatch,
		MaxDelay:     cfg.fsyncDelay,
		CacheSize:    cfg.versionCache,
		OpenDegraded: cfg.degradedOpen,
		Scrub: vstore.ScrubConfig{
			Interval: cfg.scrubInterval,
			Throttle: cfg.scrubThrottle,
			NoRepair: cfg.scrubNoRepair,
		},
	})
	if errors.Is(err, vstore.ErrNeedsMigration) {
		return fmt.Errorf("%s holds a pre-shard data layout: run `xystore -dir %s migrate` once, then restart (%w)", cfg.dir, cfg.dir, err)
	}
	if err != nil {
		return err
	}
	rec := st.RecoveryStats()
	srv := server.New(st, cfg.server)

	// The crawler persists its source registry next to the store, so a
	// restarted daemon resumes with the learned schedules and validators.
	var reg *crawl.Registry
	crawlDone := make(chan struct{})
	close(crawlDone) // replaced when crawling is enabled
	if cfg.crawl {
		reg, err = crawl.OpenRegistry(filepath.Join(cfg.dir, "crawl-sources.json"))
		if err != nil {
			return err
		}
		crawler := srv.EnableCrawl(reg, crawl.Config{
			MinInterval: cfg.crawlMin,
			MaxInterval: cfg.crawlMax,
			Concurrency: cfg.crawlConcurrency,
			Logger:      cfg.logger,
		})
		crawlDone = make(chan struct{})
		go func() {
			defer close(crawlDone)
			if err := crawler.Run(ctx); err != nil {
				cfg.logger.Error("crawler", "err", err)
			}
		}()
		cfg.logger.Info("crawler enabled", "sources", reg.Len())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	cfg.logger.Info("xydiffd listening",
		"addr", ln.Addr().String(), "dir", cfg.dir,
		"documents", len(st.IDs()),
		"journalSync", policy.String(),
		"snapshotVersions", rec.SnapshotVersions,
		"journalRecords", rec.JournalRecords,
		"tornTails", rec.TornTails,
		"quarantined", rec.Quarantined,
		"degradedDocs", rec.DegradedDocs,
		"scrubInterval", cfg.scrubInterval.String())
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err // listener failed outright
	case <-ctx.Done():
	}

	cfg.logger.Info("shutting down")
	// The serve ctx is already canceled here; the shutdown deadline must
	// come from a fresh context or Shutdown would abort immediately.
	//xyvet:allow ctxflow -- graceful-shutdown context must outlive the canceled serve ctx
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		cfg.logger.Error("shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		cfg.logger.Error("serve", "err", err)
	}
	<-crawlDone // fetchers stopped: no more ingests can reach the pool
	if reg != nil {
		if err := reg.Save(); err != nil {
			cfg.logger.Error("saving crawl registry", "err", err)
		}
	}
	srv.Close() // drain queued diffs so the checkpoint below sees them all
	if err := st.Checkpoint(); err != nil {
		return fmt.Errorf("checkpointing store: %w", err)
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	cfg.logger.Info("store checkpointed", "dir", cfg.dir, "documents", len(st.IDs()))
	return nil
}
