package main

import (
	"os"
	"path/filepath"
	"testing"

	"xydiff/internal/bench"
	"xydiff/internal/diff"
	"xydiff/internal/vstore"
)

// TestLoadSmoke is the in-process version of `make load-smoke`: a
// small concurrent workload must register, churn, assert the
// group-commit fsync ratio and leave a reopenable directory behind.
func TestLoadSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	cfg := bench.LoadConfig{
		Dir:           dir,
		Docs:          32,
		Writers:       24,
		PutsPerWriter: 3,
		Seed:          7,
	}
	// The ratio bound here only proves the assertion plumbing (never
	// more fsyncs than puts, with slack for a degenerate tiny run); the
	// real < 0.1 amortization gate is `make load-smoke` at 64 writers.
	if err := run(cfg, jsonPath, 1.5); err != nil {
		t.Fatal(err)
	}
	// The report parses back and records the workload.
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bench.ReadBench6(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.AckedPuts < int64(cfg.Docs) {
		t.Fatalf("report acked %d puts, want at least %d", r.AckedPuts, cfg.Docs)
	}
	if r.RecoveredDocs != cfg.Docs {
		t.Fatalf("report recovered %d docs, want %d", r.RecoveredDocs, cfg.Docs)
	}
	// The -dir directory survives the harness and reopens.
	s, err := vstore.Open(dir, diff.Options{}, vstore.Config{})
	if err != nil {
		t.Fatalf("harness directory does not reopen: %v", err)
	}
	defer s.Close()
	if got := len(s.IDs()); got != cfg.Docs {
		t.Fatalf("harness directory holds %d docs, want %d", got, cfg.Docs)
	}
}

// TestAssertFsyncRatioFails: an impossible ratio must turn into a
// nonzero exit (error) so the CI gate actually gates.
func TestAssertFsyncRatioFails(t *testing.T) {
	cfg := bench.LoadConfig{
		Docs:          8,
		Writers:       4,
		PutsPerWriter: 2,
		Seed:          3,
	}
	if err := run(cfg, "", 0.0000001); err == nil {
		t.Fatal("assert-fsync-ratio with an impossible bound succeeded")
	}
}
