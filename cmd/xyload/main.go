// Command xyload is the storage-engine load harness: it drives the
// sharded, group-committed engine (internal/vstore) with a
// changesim-driven mixed workload — registering synthetic sources,
// churning them with concurrent Puts, reconstructing past versions,
// and counting observer (subscription) notifications — then closes and
// reopens the directory to time cold-start recovery.
//
// The report is the evidence for the engine's two headline claims:
// group commit amortizes fsyncs across concurrent writers (fsyncs per
// acked Put well under 1 with -journal-sync=always semantics intact),
// and recovery is byte-replay over segments + snapshots, never
// re-diffing.
//
// Usage:
//
//	xyload [flags]
//
//	-dir DIR       data directory (default: a temp dir, removed after)
//	-docs N        documents registered (default 128; the design scale
//	               is millions — raise this on real hardware)
//	-writers N     concurrent writer goroutines (default 64)
//	-puts N        churn puts per writer after registration (default 6)
//	-read-every N  every Nth churn op reconstructs a random past
//	               version (default 4, 0 disables)
//	-store-shards / -fsync-batch / -fsync-delay / -version-cache /
//	-segment-bytes tune the engine like xydiffd's flags
//	-journal-sync  fsync policy: always, interval or off (default always)
//	-seed n        workload seed (default 1)
//	-json path     write the machine-readable report (- for stdout)
//	-assert-fsync-ratio r  exit 1 unless fsyncs per acked Put < r
//	               (the make load-smoke gate uses 0.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xydiff/internal/bench"
)

func main() {
	var cfg bench.LoadConfig
	var jsonPath string
	var assertRatio float64
	flag.StringVar(&cfg.Dir, "dir", "", "data `directory` (empty = temp dir, removed after)")
	flag.IntVar(&cfg.Docs, "docs", 0, "documents registered (0 = default 128)")
	flag.IntVar(&cfg.Writers, "writers", 0, "concurrent writers (0 = default 64)")
	flag.IntVar(&cfg.PutsPerWriter, "puts", 0, "churn puts per writer (0 = default 6)")
	flag.IntVar(&cfg.ReadEvery, "read-every", 0, "reconstruct a random version every `N`th churn op (0 = default 4, negative disables)")
	flag.IntVar(&cfg.Shards, "store-shards", 0, "storage shard count (0 = default 2)")
	flag.IntVar(&cfg.MaxBatch, "fsync-batch", 0, "max Puts per group-committed fsync (0 = engine default)")
	flag.DurationVar(&cfg.MaxDelay, "fsync-delay", 0, "group-commit linger `window` (0 = engine default)")
	flag.IntVar(&cfg.CacheSize, "version-cache", 0, "materialized versions kept in memory (0 = engine default)")
	flag.Int64Var(&cfg.SegmentBytes, "segment-bytes", 0, "segment rotation threshold (0 = engine default)")
	flag.StringVar(&cfg.Sync, "journal-sync", "", "fsync `policy`: always, interval or off (default always)")
	flag.Int64Var(&cfg.Seed, "seed", 0, "workload `seed` (0 = default 1)")
	flag.StringVar(&jsonPath, "json", "", "write report to `path` (- for stdout)")
	flag.Float64Var(&assertRatio, "assert-fsync-ratio", 0, "exit 1 unless fsyncs per acked Put < `r` (0 = no assertion)")
	flag.Parse()
	if err := run(cfg, jsonPath, assertRatio); err != nil {
		fmt.Fprintln(os.Stderr, "xyload:", err)
		os.Exit(1)
	}
}

func run(cfg bench.LoadConfig, jsonPath string, assertRatio float64) error {
	start := time.Now()
	r, err := bench.RunLoad(cfg)
	if err != nil {
		return err
	}
	bench.PrintBench6(os.Stdout, r)
	fmt.Printf("wall time         %.2fs\n", time.Since(start).Seconds())
	if jsonPath != "" {
		if jsonPath == "-" {
			if err := r.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if assertRatio > 0 && r.FsyncsPerPut >= assertRatio {
		return fmt.Errorf("fsyncs per acked Put %.3f >= %.3f: group commit is not amortizing (mean batch %.2f over %d puts)",
			r.FsyncsPerPut, assertRatio, r.MeanBatch, r.AckedPuts)
	}
	return nil
}
