// Command xyvet runs xydiff's domain-specific static-analysis suite
// (internal/analysis) over the module: the repo-specific invariants —
// no panics escaping library code, balanced lock and pool usage,
// context propagation, wrapped errors, durable-write ordering,
// goroutine and timer lifecycles, and the architecture boundaries
// (the diff core never imports os/syscall/net, storage never imports
// the server, commands never import each other) — checked mechanically
// instead of by review. Packages are analyzed in parallel on up to
// GOMAXPROCS goroutines; output order is deterministic regardless.
//
// Usage:
//
//	xyvet [-json] [-list] [packages]
//
// Package patterns are module-relative ("./...", "./internal/store").
// With no pattern, ./... is checked.
//
// Exit status:
//
//	0  no findings
//	1  at least one diagnostic was reported
//	2  the code could not be loaded (parse or type errors, bad usage)
//
// With -json the output is a single object: "findings" holds the
// diagnostics (file, line, column, analyzer, message), "counts" the
// per-analyzer finding totals (only analyzers that fired appear).
//
// A finding is suppressed by a comment on the flagged line or the line
// above it:
//
//	//xyvet:allow <analyzer>[,<analyzer>] -- reason
//
// Suppressions are audited in turn: a directive that no longer
// suppresses anything, or that names an unknown analyzer, is itself a
// staleallow finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"xydiff/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json envelope.
type report struct {
	Findings []analysis.Diagnostic `json:"findings"`
	Counts   map[string]int        `json:"counts"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("xyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings and per-analyzer counts as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xyvet [-json] [-list] [packages]\n\n")
		fmt.Fprintf(stderr, "Checks xydiff's domain invariants. Patterns are module-relative (default ./...).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	loader, err := analysis.LoaderForDir(wd)
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	loadErrors := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "xyvet: %s: %v\n", pkg.Path, terr)
			loadErrors++
		}
	}
	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		rep := report{Findings: diags, Counts: make(map[string]int)}
		if rep.Findings == nil {
			rep.Findings = []analysis.Diagnostic{}
		}
		for _, d := range diags {
			rep.Counts[d.Analyzer]++
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "xyvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	switch {
	case loadErrors > 0:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}
