// Command xyvet runs xydiff's domain-specific static-analysis suite
// (internal/analysis) over the module: the repo-specific invariants —
// no panics escaping library code, balanced lock usage, context
// propagation, wrapped errors, durable-write ordering — checked
// mechanically instead of by review.
//
// Usage:
//
//	xyvet [-json] [-list] [packages]
//
// Package patterns are module-relative ("./...", "./internal/store").
// With no pattern, ./... is checked. Exit status is 1 when any
// diagnostic is reported, 2 when the code cannot be loaded.
//
// A finding is suppressed by a comment on the flagged line or the line
// above it:
//
//	//xyvet:allow <analyzer>[,<analyzer>] -- reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"xydiff/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("xyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xyvet [-json] [-list] [packages]\n\n")
		fmt.Fprintf(stderr, "Checks xydiff's domain invariants. Patterns are module-relative (default ./...).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	loader, err := analysis.LoaderForDir(wd)
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "xyvet:", err)
		return 2
	}
	loadErrors := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "xyvet: %s: %v\n", pkg.Path, terr)
			loadErrors++
		}
	}
	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "xyvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	switch {
	case loadErrors > 0:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}
