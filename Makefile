# The pre-PR gate: `make check` is what CI runs and what every change
# should pass locally before review. Gate order, cheapest signal first:
#
#   1. fmt        — gofmt, no-op diff required
#   2. vet        — `go vet` then `xyvet`, the repo's own analyzer suite
#                   (internal/analysis: nopanic, lockbalance, ctxflow,
#                   errwrap, syncorder); any diagnostic fails the gate
#   3. build      — every package compiles
#   4. race       — the whole test suite under the race detector,
#                   including the concurrent Put/Diff/Subscribe stress test
#   5. fuzz-smoke — every fuzzer briefly, no corpus growth kept
#   6. bench-check — quick bench5 run gated against BENCH_5.json
#                   (coarse tolerances; catches gross perf regressions)
#
# scripts/check.sh runs the same sequence standalone (no make needed).
GO ?= go

.PHONY: check fmt vet xyvet build test race bench fuzz-smoke bench-json bench-check server crawl-demo

check: fmt vet build race fuzz-smoke bench-check

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xyvet ./...

xyvet:
	$(GO) run ./cmd/xyvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the committed benchmark baseline (BENCH_5.json): per-
# workload ns/op + B/op, delta-quality ratios and the Workers sweep.
bench-json:
	$(GO) run ./cmd/xybench -json BENCH_5.json bench5

# Gate a fresh quick-mode run against the committed baseline; see
# scripts/benchdiff.sh for the tolerances.
bench-check:
	./scripts/benchdiff.sh -quick

# Smoke-run every fuzzer briefly: ~10s each, no corpus growth kept.
# Go runs one fuzz target per invocation, hence one line per fuzzer.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/htmlize -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpathlite -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzApply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/diff -run '^$$' -fuzz '^FuzzDiffApply$$' -fuzztime $(FUZZTIME)

# Run the change-control daemon locally (data in ./xydiffd-data).
server:
	$(GO) run ./cmd/xydiffd -addr :8427

# Watch the adaptive crawler converge on a simulated changing web
# (Figure 1's first box, self-contained, ~5 seconds).
crawl-demo:
	$(GO) run ./examples/crawl
