# The pre-PR gate: `make check` is what CI runs and what every change
# should pass locally before review.
GO ?= go

.PHONY: check fmt vet build test race bench fuzz-smoke server

check: fmt vet build race fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Smoke-run every fuzzer briefly: ~10s each, no corpus growth kept.
# Go runs one fuzz target per invocation, hence one line per fuzzer.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/htmlize -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpathlite -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzApply$$' -fuzztime $(FUZZTIME)

# Run the change-control daemon locally (data in ./xydiffd-data).
server:
	$(GO) run ./cmd/xydiffd -addr :8427
