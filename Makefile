# The pre-PR gate: `make check` is what CI runs and what every change
# should pass locally before review. Gate order, cheapest signal first:
#
#   1. fmt        — gofmt, no-op diff required
#   2. vet        — `go vet` then `xyvet`, the repo's own analyzer suite
#                   (internal/analysis: nopanic, lockbalance, ctxflow,
#                   errwrap, syncorder, segorder, goroleak, poolbalance,
#                   timerleak, depbound, staleallow); any diagnostic
#                   fails the gate
#   3. build      — every package compiles
#   4. race       — the whole test suite under the race detector,
#                   including the concurrent Put/Diff/Subscribe stress test
#   5. fuzz-smoke — every fuzzer briefly, no corpus growth kept
#   6. load-smoke — the storage load harness at the smoke size; fails
#                   unless group commit holds fsyncs-per-Put under 0.1
#                   with 64 concurrent writers
#   7. scrub-smoke — bit-rot round-trip: flip a bit in a sealed
#                   segment, assert the scrubber detects and repairs it
#                   byte-identically (and the CLI path quarantines what
#                   it cannot repair)
#   8. match-smoke — SFTM match quality on the id-less changesim HTML
#                   corpus: absolute precision/recall floors plus
#                   beating BULD-without-IDs on both axes
#   9. xpath-smoke — the differential XPath harness: 6000 generated
#                   query×document pairs evaluated by both xpathlite
#                   and the independent naive evaluator, zero
#                   divergences tolerated
#  10. bench-check — quick bench5–bench8 runs gated against
#                   BENCH_5.json … BENCH_8.json (coarse tolerances;
#                   catches gross perf and match-quality regressions,
#                   holds SFTM to beating BULD-without-IDs on the
#                   id-less HTML corpus, and holds every matcher's
#                   delta cost to the optdelta oracle's optimum)
#
# scripts/check.sh runs the same sequence standalone (no make needed).
GO ?= go

.PHONY: check fmt vet xyvet build test race bench fuzz-smoke load-smoke scrub-smoke match-smoke xpath-smoke bench-json bench-json6 bench-json7 bench-json8 bench-check server crawl-demo

check: fmt vet build race fuzz-smoke load-smoke scrub-smoke match-smoke xpath-smoke bench-check

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xyvet ./...

xyvet:
	$(GO) run ./cmd/xyvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the committed benchmark baselines for the diff core:
# BENCH_5.json (per-workload ns/op + B/op, delta-quality ratios, the
# Workers sweep) and BENCH_7.json (the matcher comparison, via the
# bench-json7 prerequisite).
bench-json: bench-json7
	$(GO) run ./cmd/xybench -json BENCH_5.json bench5

# Regenerate the committed storage-engine baseline (BENCH_6.json):
# group-commit fsync amortization, latency percentiles, recovery time.
bench-json6:
	$(GO) run ./cmd/xybench -json BENCH_6.json bench6

# Match-quality smoke: on the id-less changesim HTML corpus SFTM must
# hold its absolute precision/recall floors and beat BULD-without-IDs
# on both axes.
match-smoke:
	$(GO) test ./internal/changesim -run '^TestSFTMQualityOnHTMLCorpus$$' -count=1 -v

# Regenerate the committed matcher baseline (BENCH_7.json): SFTM vs
# BULD-without-IDs precision/recall on the id-less HTML corpus, delta
# sizes vs the perfect delta, and the SFTM worker sweep.
bench-json7:
	$(GO) run ./cmd/xybench -json BENCH_7.json bench7

# Regenerate the committed optimality baseline (BENCH_8.json): BULD,
# SFTM and changesim's perfect delta costed against the exact optimum
# the optdelta oracle proves on small trees.
bench-json8:
	$(GO) run ./cmd/xybench -json BENCH_8.json bench8

# Differential XPath smoke: xpathlite vs the deliberately naive
# second evaluator over 6000 generated query×document pairs; any
# disagreement (node set, order, or compile verdict) fails the gate.
xpath-smoke:
	$(GO) test ./internal/xptest -run '^TestXPathDifferentialSeeded$$' -count=1 -v

# Gate fresh quick-mode runs against the committed baselines; see
# scripts/benchdiff.sh for the tolerances.
bench-check:
	./scripts/benchdiff.sh -quick

# Storage load harness at the smoke size: 64 concurrent writers must
# amortize to fewer than 0.1 fsyncs per acknowledged Put while keeping
# -journal-sync=always semantics (every acked Put fsynced before ack).
load-smoke:
	$(GO) run ./cmd/xyload -assert-fsync-ratio 0.1

# Bit-rot smoke: one flipped bit in a sealed segment must be detected
# and repaired byte-identically within a single scrub cycle, and the
# xystore scrub subcommand must quarantine (never serve) what an
# offline pass cannot rebuild.
scrub-smoke:
	$(GO) test ./internal/vstore -run '^TestScrubRepairsCorruptSealedSegment$$' -count=1
	$(GO) test ./cmd/xystore -run '^TestScrubCommand' -count=1

# Smoke-run every fuzzer briefly: ~10s each, no corpus growth kept.
# Go runs one fuzz target per invocation, hence one line per fuzzer.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/htmlize -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpathlite -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/delta -run '^$$' -fuzz '^FuzzApply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/diff -run '^$$' -fuzz '^FuzzDiffApply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/diff -run '^$$' -fuzz '^FuzzSFTMApply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xptest -run '^$$' -fuzz '^FuzzXPathDifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xptest -run '^$$' -fuzz '^FuzzXPathDifferentialRaw$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/optdelta -run '^$$' -fuzz '^FuzzOptDeltaSound$$' -fuzztime $(FUZZTIME)

# Run the change-control daemon locally (data in ./xydiffd-data).
server:
	$(GO) run ./cmd/xydiffd -addr :8427

# Watch the adaptive crawler converge on a simulated changing web
# (Figure 1's first box, self-contained, ~5 seconds).
crawl-demo:
	$(GO) run ./examples/crawl
