# The pre-PR gate: `make check` is what CI runs and what every change
# should pass locally before review.
GO ?= go

.PHONY: check fmt vet build test race bench server

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Run the change-control daemon locally (data in ./xydiffd-data).
server:
	$(GO) run ./cmd/xydiffd -addr :8427
